// E5 - Theorem 21(2) / Corollary 33 (the k-set agreement reduction).
//
// Claim: if an x-obstruction-free protocol for k-set agreement among n
// processes used fewer than floor((n-x)/(k+1-x)) + 1 registers, then k+1
// simulators (d = x direct) would solve k-set agreement wait-free, which is
// impossible.  Operationally: running the simulation against *space-starved*
// racing instances always terminates (wait-freedom), every run replays to a
// legal execution of the protocol, and some runs violate k-agreement - the
// concrete witness that the starved protocol cannot be correct.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/bounds/bounds.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"
#include "src/tasks/task_spec.h"

namespace {

using namespace revisim;

}  // namespace

int main() {
  benchutil::header(
      "E5: k-set agreement space reduction",
      "Corollary 33: m <= floor((n-x)/(k+1-x)) lets f = k+1 simulators run "
      "wait-free; agreement violations witness the protocol's brokenness");

  struct Row {
    std::size_t n, k, x, m;
  };
  // m is chosen exactly at the simulation's feasibility edge:
  // (f - x) m + x <= n with f = k + 1.
  const std::vector<Row> grid = {
      {4, 1, 0, 2}, {6, 1, 0, 3}, {8, 1, 0, 4},
      {5, 1, 1, 4}, {7, 1, 1, 6},
      {6, 2, 0, 2}, {9, 2, 0, 3}, {7, 2, 1, 3}, {8, 2, 2, 6},
      {8, 3, 1, 2}, {9, 3, 2, 3},
  };
  const std::size_t seeds = 80;
  bool all_terminated = true;
  bool all_replayed = true;
  std::size_t rows_with_violations = 0;

  std::printf(
      "\n  n  k  x  m  lower-bound  f  runs  terminated  replay-ok  "
      "violations  validity-ok\n");
  for (const Row& row : grid) {
    const std::size_t f = row.k + 1;
    proto::RacingAgreement protocol(row.n, row.m);
    tasks::KSetAgreement task(row.k);
    std::size_t terminated = 0;
    std::size_t replay_ok = 0;
    std::size_t violations = 0;
    std::size_t validity_ok = 0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      runtime::Scheduler sched;
      std::vector<Val> inputs;
      for (std::size_t i = 0; i < f; ++i) {
        inputs.push_back(static_cast<Val>(10 * (i + 1)));
      }
      sim::SimulationDriver::Options opt;
      opt.d = row.x;
      opt.n = row.n;
      sim::SimulationDriver driver(sched, protocol, inputs, opt);
      // Alternate uniform-random and bursty schedules: racing protocols
      // betray themselves mostly under covering-style bursts.
      std::unique_ptr<runtime::Adversary> adv;
      if (seed % 2 == 0) {
        adv = std::make_unique<runtime::RandomAdversary>(seed * 101 + row.n);
      } else {
        adv = std::make_unique<runtime::BurstAdversary>(seed * 101 + row.n,
                                                        10);
      }
      if (!driver.run(*adv, 20'000'000)) {
        continue;
      }
      ++terminated;
      auto report = sim::validate_simulation(driver);
      if (report.ok()) {
        ++replay_ok;
      }
      auto verdict = task.validate(driver.inputs(), driver.outputs());
      if (!verdict.ok) {
        ++violations;
      }
      // Validity part alone: every output is an input.
      bool valid = true;
      for (Val y : driver.outputs()) {
        bool found = false;
        for (Val xin : driver.inputs()) {
          found = found || xin == y;
        }
        valid = valid && found;
      }
      if (valid) {
        ++validity_ok;
      }
    }
    const std::size_t lower =
        row.x >= 1 ? bounds::kset_space_lower_bound(row.n, row.k, row.x)
                   : bounds::kset_space_lower_bound(row.n, row.k, 1);
    std::printf("  %zu  %zu  %zu  %zu  %11zu  %zu  %4zu  %10zu  %9zu  %10zu  %11zu\n",
                row.n, row.k, row.x, row.m, lower, f, seeds, terminated,
                replay_ok, violations, validity_ok);
    all_terminated = all_terminated && terminated == seeds;
    all_replayed = all_replayed && replay_ok == terminated;
    if (violations > 0) {
      ++rows_with_violations;
    }
  }
  benchutil::verdict(all_terminated, "simulation wait-free on every instance");
  benchutil::verdict(all_replayed,
                     "every run replayed to a legal protocol execution");
  benchutil::verdict(rows_with_violations > 0,
                     "agreement violations manufactured on " +
                         std::to_string(rows_with_violations) +
                         " starved instances (the reduction's bite)");
  return (all_terminated && all_replayed) ? 0 : 1;
}
