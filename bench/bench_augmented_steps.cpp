// E1 - Lemma 2 (step complexity of the augmented snapshot).
//
// Claim: every Block-Update takes at most 6 steps on the single-writer
// snapshot H (5 when it yields early), and a Scan concurrent with k
// interfering update batches takes at most 2k+3 steps.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> bu_worker(AugmentedSnapshot& m, ProcessId me, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::size_t> comps{i % m.components()};
    std::vector<Val> vals{static_cast<Val>(100 * me + i)};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

Task<void> scan_worker(AugmentedSnapshot& m, ProcessId me, std::size_t count,
                       std::vector<std::size_t>& costs, Scheduler& sched) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t before = sched.steps_taken(me);
    co_await m.Scan(me);
    costs.push_back(sched.steps_taken(me) - before);
  }
}

}  // namespace

int main() {
  benchutil::header("E1: augmented snapshot step complexity",
                    "Lemma 2: Block-Update = 6 H-steps; Scan <= 2k+3");

  // Part 1: Block-Update cost across contention levels.
  std::printf("\n  f  block-updates  total-H-steps  steps/op  bound\n");
  bool bu_ok = true;
  for (std::size_t f = 1; f <= 5; ++f) {
    Scheduler sched;
    AugmentedSnapshot m(sched, "M", 3, f);
    const std::size_t per = 40;
    for (ProcessId p = 0; p < f; ++p) {
      sched.spawn(bu_worker(m, p, per), "q");
    }
    runtime::RandomAdversary adv(42 + f);
    sched.run(adv);
    const double ops = double(f * per);
    const double per_op = double(sched.total_steps()) / ops;
    std::printf("  %zu  %13zu  %13zu  %8.3f  6\n", f, f * per,
                sched.total_steps(), per_op);
    bu_ok = bu_ok && per_op <= 6.0 + 1e-9;
  }
  benchutil::verdict(bu_ok, "every Block-Update took at most 6 H-steps");

  // Part 2: Scan cost as a function of concurrent update batches.  The
  // adversary interleaves k full Block-Updates into one Scan.
  std::printf("\n  k(concurrent updates)  scan-steps  bound 2k+3\n");
  bool scan_ok = true;
  for (std::size_t k = 0; k <= 6; ++k) {
    Scheduler sched;
    AugmentedSnapshot m(sched, "M", 2, 2);
    std::vector<std::size_t> costs;
    sched.spawn(bu_worker(m, 0, k), "q1");
    sched.spawn(scan_worker(m, 1, 1, costs, sched), "q2");
    // Schedule: q2 takes its opening scan, then q1 runs one whole
    // Block-Update at a time, each invalidating q2's double collect once.
    std::vector<ProcessId> script{1};
    for (std::size_t i = 0; i < k; ++i) {
      for (int s = 0; s < 6; ++s) {
        script.push_back(0);
      }
      script.push_back(1);  // q2 L-write update
      script.push_back(1);  // q2 confirming scan (invalidated while k left)
    }
    runtime::ScriptedAdversary adv(script);
    sched.run(adv);
    if (costs.empty()) {
      std::printf("  %21zu  (scan unfinished)\n", k);
      continue;
    }
    std::printf("  %21zu  %10zu  %zu\n", k, costs[0], 2 * k + 3);
    scan_ok = scan_ok && costs[0] <= 2 * k + 3;
  }
  benchutil::verdict(scan_ok, "every Scan stayed within 2k+3 steps");
  return (bu_ok && scan_ok) ? 0 : 1;
}
