// Micro-benchmarks (google-benchmark): wall-clock cost of the library's hot
// paths - augmented-snapshot operations, the §3.3 linearizer, protocol
// steps, and a whole reduction run.  These measure the *reproduction*, not
// the paper (the paper's costs are step counts, covered by E1/E4).
#include <benchmark/benchmark.h>

#include <sys/socket.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/dist/fault_channel.h"
#include "src/dist/wire.h"
#include "src/memory/register.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/protocol_runner.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace {

using namespace revisim;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> bu_loop(aug::AugmentedSnapshot& m, ProcessId me, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<std::size_t> comps{i % m.components()};
    std::vector<Val> vals{static_cast<Val>(i)};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

void BM_AugmentedBlockUpdates(benchmark::State& state) {
  const std::size_t f = static_cast<std::size_t>(state.range(0));
  const std::size_t ops = 50;
  for (auto _ : state) {
    Scheduler sched;
    aug::AugmentedSnapshot m(sched, "M", 3, f);
    for (ProcessId p = 0; p < f; ++p) {
      sched.spawn(bu_loop(m, p, ops), "q");
    }
    runtime::RandomAdversary adv(7);
    sched.run(adv);
    benchmark::DoNotOptimize(sched.total_steps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * f *
                          ops);
}
BENCHMARK(BM_AugmentedBlockUpdates)->Arg(1)->Arg(2)->Arg(4);

Task<void> reg_loop(mem::TypedRegister<Val>& reg, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    co_await reg.write(static_cast<Val>(i));
  }
}

void BM_SchedulerStep(benchmark::State& state) {
  // One process, many single-register writes in fast mode: isolates the
  // per-step post_step + StepAwaiter dispatch, the inner loop of explorer
  // replay.  The scheduler/register construction amortizes over k steps.
  const std::size_t k = 512;
  for (auto _ : state) {
    Scheduler sched;
    sched.set_recording(false);
    mem::TypedRegister<Val> reg(sched, "r", Val{0});
    sched.spawn(reg_loop(reg, k), "q");
    while (!sched.all_done()) {
      sched.run_step(0);
    }
    benchmark::DoNotOptimize(sched.total_steps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_SchedulerStep);

void BM_ToStringView(benchmark::State& state) {
  View view(static_cast<std::size_t>(state.range(0)));
  for (std::size_t j = 0; j < view.size(); ++j) {
    if (j % 3 != 0) {
      view[j] = static_cast<Val>(j * 1234567);
    }
  }
  for (auto _ : state) {
    auto s = to_string(view);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ToStringView)->Arg(4)->Arg(32);

Task<void> fat_loop(Scheduler& sched, std::size_t obj, std::size_t k) {
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  for (std::size_t i = 0; i < k; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [a, b, c, d] { benchmark::DoNotOptimize(a + b + c + d); }, obj,
        runtime::StepKind::kWrite, {});
  }
}

void BM_SchedulerStepFatCapture(benchmark::State& state) {
  // A 32-byte step capture - the size class of real snapshot operations -
  // exceeds std::function's inline buffer but not SmallFn's.
  const std::size_t k = 512;
  for (auto _ : state) {
    Scheduler sched;
    sched.set_recording(false);
    const std::size_t obj = sched.register_object("r");
    sched.spawn(fat_loop(sched, obj, k), "q");
    while (!sched.all_done()) {
      sched.run_step(0);
    }
    benchmark::DoNotOptimize(sched.total_steps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_SchedulerStepFatCapture);

void BM_Linearize(benchmark::State& state) {
  const std::size_t f = 3;
  Scheduler sched;
  aug::AugmentedSnapshot m(sched, "M", 3, f);
  for (ProcessId p = 0; p < f; ++p) {
    sched.spawn(bu_loop(m, p, static_cast<std::size_t>(state.range(0))), "q");
  }
  runtime::RandomAdversary adv(11);
  sched.run(adv);
  for (auto _ : state) {
    auto lin = aug::linearize(m.log(), 3);
    benchmark::DoNotOptimize(lin.ops.size());
  }
}
BENCHMARK(BM_Linearize)->Arg(20)->Arg(60);

void BM_ProtocolStep(benchmark::State& state) {
  proto::CAConsensus p(6);
  proto::ProtocolRun run(p, {0, 1, 2, 3, 4, 5});
  std::size_t i = 0;
  for (auto _ : state) {
    run.step(i % 6);
    ++i;
    if (run.all_done()) {
      state.PauseTiming();
      run = proto::ProtocolRun(p, {0, 1, 2, 3, 4, 5});
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ProtocolStep);

void BM_FullReduction(benchmark::State& state) {
  proto::RacingAgreement protocol(4, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Scheduler sched;
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary adv(seed++);
    driver.run(adv, 10'000'000);
    benchmark::DoNotOptimize(driver.outputs().size());
  }
}
BENCHMARK(BM_FullReduction);

void BM_ReplayValidation(benchmark::State& state) {
  proto::RacingAgreement protocol(4, 2);
  Scheduler sched;
  sim::SimulationDriver driver(sched, protocol, {10, 20});
  runtime::RandomAdversary adv(3);
  driver.run(adv, 10'000'000);
  for (auto _ : state) {
    auto report = sim::validate_simulation(driver);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_ReplayValidation);

void BM_WireRoundtrip(benchmark::State& state) {
  // Encode + decode of a job frame as the coordinator and worker do it: one
  // writer per connection, cleared per message, so the steady state is
  // byte-shifting into retained capacity - no allocation on the encode
  // side.  The prefix length models a mid-depth donation.
  dist::JobMsg job;
  job.id = 7;
  job.budget = 500'000;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    job.prefix.push_back(static_cast<ProcessId>(i % 3));
  }
  job.choices = {0, 1, 2, runtime::make_crash_entry(1)};
  job.sleep = {2};
  dist::WireWriter w;
  for (auto _ : state) {
    w.clear();
    dist::encode_job(w, job);
    dist::WireReader r(w.data(), w.size());
    dist::JobMsg back = dist::decode_job(r);
    benchmark::DoNotOptimize(back.prefix.data());
    benchmark::DoNotOptimize(back.choices.data());
  }
}
BENCHMARK(BM_WireRoundtrip)->Arg(16)->Arg(64);

void BM_WireFpBatchRoundtrip(benchmark::State& state) {
  // One fingerprint pipeline exchange: encode + decode a kFpBatch of N
  // claims and its packed kFpVerdicts bitmap.  Steady state reuses writer
  // capacity both ways - the per-state wire cost the async pipeline
  // amortizes over the batch.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  dist::FpBatchMsg batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.fps.push_back(
        util::Fingerprint{0x9e3779b97f4a7c15ull * (i + 1), i});
  }
  dist::WireWriter w;
  dist::WireWriter wv;
  for (auto _ : state) {
    w.clear();
    dist::encode_fp_batch(w, batch);
    dist::WireReader r(w.data(), w.size());
    dist::FpBatchMsg got = dist::decode_fp_batch(r);
    dist::FpVerdictsMsg verdicts;
    verdicts.resize(static_cast<std::uint32_t>(got.fps.size()));
    for (std::uint32_t i = 0; i < verdicts.count; ++i) {
      verdicts.set(i, (i & 1) != 0);
    }
    wv.clear();
    dist::encode_fp_verdicts(wv, verdicts);
    dist::WireReader rv(wv.data(), wv.size());
    dist::FpVerdictsMsg back = dist::decode_fp_verdicts(rv);
    benchmark::DoNotOptimize(back.bitmap.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WireFpBatchRoundtrip)->Arg(1)->Arg(32)->Arg(128);

void BM_ChannelEnqueueFlush(benchmark::State& state) {
  // The buffered (epoll-side) send path end to end: enqueue N frames into
  // the reserve-once tx buffer, flush with one scatter-gather writev, and
  // drain them through buffered_recv on the far side of a socketpair.
  // Compares directly with N blocking send() round trips (syscalls per
  // frame vs per flush).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  dist::Channel tx;
  dist::Channel rx;
  tx.adopt(sv[0]);
  rx.adopt(sv[1]);
  tx.set_nonblocking();
  rx.set_nonblocking();
  dist::LiveMsg live{7, 123456};
  dist::WireWriter w;
  dist::Frame frame;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      w.clear();
      dist::encode_live(w, live);
      tx.enqueue(dist::MsgType::kLive, w);
    }
    while (!tx.flush()) {
    }
    std::size_t got = 0;
    while (got < n) {
      const int rc = rx.buffered_recv(frame);
      if (rc > 0) {
        ++got;
      }
    }
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChannelEnqueueFlush)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
