// Micro-benchmarks (google-benchmark): wall-clock cost of the library's hot
// paths - augmented-snapshot operations, the §3.3 linearizer, protocol
// steps, and a whole reduction run.  These measure the *reproduction*, not
// the paper (the paper's costs are step counts, covered by E1/E4).
#include <benchmark/benchmark.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/protocol_runner.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace {

using namespace revisim;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> bu_loop(aug::AugmentedSnapshot& m, ProcessId me, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<std::size_t> comps{i % m.components()};
    std::vector<Val> vals{static_cast<Val>(i)};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

void BM_AugmentedBlockUpdates(benchmark::State& state) {
  const std::size_t f = static_cast<std::size_t>(state.range(0));
  const std::size_t ops = 50;
  for (auto _ : state) {
    Scheduler sched;
    aug::AugmentedSnapshot m(sched, "M", 3, f);
    for (ProcessId p = 0; p < f; ++p) {
      sched.spawn(bu_loop(m, p, ops), "q");
    }
    runtime::RandomAdversary adv(7);
    sched.run(adv);
    benchmark::DoNotOptimize(sched.total_steps());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * f *
                          ops);
}
BENCHMARK(BM_AugmentedBlockUpdates)->Arg(1)->Arg(2)->Arg(4);

void BM_Linearize(benchmark::State& state) {
  const std::size_t f = 3;
  Scheduler sched;
  aug::AugmentedSnapshot m(sched, "M", 3, f);
  for (ProcessId p = 0; p < f; ++p) {
    sched.spawn(bu_loop(m, p, static_cast<std::size_t>(state.range(0))), "q");
  }
  runtime::RandomAdversary adv(11);
  sched.run(adv);
  for (auto _ : state) {
    auto lin = aug::linearize(m.log(), 3);
    benchmark::DoNotOptimize(lin.ops.size());
  }
}
BENCHMARK(BM_Linearize)->Arg(20)->Arg(60);

void BM_ProtocolStep(benchmark::State& state) {
  proto::CAConsensus p(6);
  proto::ProtocolRun run(p, {0, 1, 2, 3, 4, 5});
  std::size_t i = 0;
  for (auto _ : state) {
    run.step(i % 6);
    ++i;
    if (run.all_done()) {
      state.PauseTiming();
      run = proto::ProtocolRun(p, {0, 1, 2, 3, 4, 5});
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ProtocolStep);

void BM_FullReduction(benchmark::State& state) {
  proto::RacingAgreement protocol(4, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Scheduler sched;
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary adv(seed++);
    driver.run(adv, 10'000'000);
    benchmark::DoNotOptimize(driver.outputs().size());
  }
}
BENCHMARK(BM_FullReduction);

void BM_ReplayValidation(benchmark::State& state) {
  proto::RacingAgreement protocol(4, 2);
  Scheduler sched;
  sim::SimulationDriver driver(sched, protocol, {10, 20});
  runtime::RandomAdversary adv(3);
  driver.run(adv, 10'000'000);
  for (auto _ : state) {
    auto report = sim::validate_simulation(driver);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_ReplayValidation);

}  // namespace

BENCHMARK_MAIN();
