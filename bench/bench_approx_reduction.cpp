// E6 - Theorem 21(1) / Corollary 34 (the approximate-agreement reduction).
//
// Claim: two covering simulators turn any obstruction-free epsilon-agreement
// protocol on m components into a 2-process wait-free solution taking at
// most 2^{f m^2} steps - independent of epsilon.  Since 2-process
// epsilon-agreement needs L = (1/2) log3(1/eps) steps (Hoest-Shavit), any
// protocol with 2^{f m^2} < L is broken; the sweep shows the measured
// simulation cost flat in epsilon while L grows, and epsilon violations
// appearing on starved instances.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/bounds/bounds.h"
#include "src/protocols/approx_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"
#include "src/tasks/task_spec.h"

namespace {
using namespace revisim;
}  // namespace

int main() {
  benchutil::header(
      "E6: epsilon-approximate agreement reduction",
      "Theorem 21(1)/Corollary 34: simulation cost is flat in epsilon while "
      "the 2-process step lower bound L = 0.5 log3(1/eps) grows");

  const std::size_t m = 2;
  const std::size_t n = 4;  // starved: correct protocol would need m = n
  const std::size_t f = 2;
  std::printf(
      "\n  eps        L(eps)   worst-sim-H-steps  2^(f*m^2)  replay-ok  "
      "eps-violations/runs\n");
  bool all_replayed = true;
  bool flat = true;
  std::size_t first_worst = 0;
  for (double eps : {0.1, 0.01, 1e-3, 1e-4, 1e-6, 1e-8}) {
    proto::ApproxAgreement protocol(n, m, eps);
    tasks::ApproxAgreementTask task(eps);
    std::size_t worst_steps = 0;
    std::size_t violations = 0;
    std::size_t replay_ok = 0;
    const std::size_t seeds = 40;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      runtime::Scheduler sched;
      sim::SimulationDriver driver(sched, protocol,
                                   {to_fixed(0.0), to_fixed(1.0)});
      runtime::RandomAdversary adv(seed * 13 + 1);
      if (!driver.run(adv, 20'000'000)) {
        benchutil::verdict(false, "simulation not wait-free");
        return 1;
      }
      for (runtime::ProcessId i = 0; i < f; ++i) {
        worst_steps = std::max(worst_steps, sched.steps_taken(i));
      }
      if (sim::validate_simulation(driver).ok()) {
        ++replay_ok;
      }
      if (!task.validate(driver.inputs(), driver.outputs()).ok) {
        ++violations;
      }
    }
    const double l = bounds::approx_step_lower_bound(eps);
    std::printf("  %-9g  %6.2f  %17zu  %9.0f  %6zu/%zu  %zu/%zu\n", eps, l,
                worst_steps, std::pow(2.0, double(f * m * m)), replay_ok,
                seeds, violations, seeds);
    all_replayed = all_replayed && replay_ok == seeds;
    if (first_worst == 0) {
      first_worst = worst_steps;
    }
    // "Flat": cost may wiggle with the round count but must stay within the
    // same order while L grows unboundedly.
    flat = flat && worst_steps < 50 * std::max<std::size_t>(first_worst, 1);
  }
  benchutil::verdict(all_replayed, "all runs replayed to legal executions");
  benchutil::verdict(flat,
                     "simulation cost flat in epsilon (the reduction's core)");
  return (all_replayed && flat) ? 0 : 1;
}
