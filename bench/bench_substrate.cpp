// E11 - the register substrate (space accounting made literal).
//
// The paper's space complexity counts *registers*.  This experiment runs
// the identical reduction twice: over the atomic single-writer snapshot
// base object (the paper's model) and over the Afek-et-al. construction
// whose only shared objects are f plain registers.  Semantics - outputs,
// replay validity, yield discipline - are identical; only the step currency
// changes (an H-operation costs O(f^2) register steps).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace {
using namespace revisim;
using Substrate = sim::SimulationDriver::Substrate;
}  // namespace

int main() {
  benchutil::header(
      "E11: the reduction on plain registers",
      "the real system's only shared objects are f registers (Afek et al. "
      "single-writer snapshot); all Section 3/4 properties carry over");

  std::printf(
      "\n  substrate  f  m  runs  terminated  replay-ok  registers  "
      "worst-steps/simulator\n");
  bool ok = true;
  for (Substrate sub : {Substrate::kAtomicSnapshot, Substrate::kRegisters}) {
    const char* name =
        sub == Substrate::kRegisters ? "registers" : "atomic-H ";
    for (std::size_t f = 1; f <= 3; ++f) {
      const std::size_t m = 2;
      proto::RacingAgreement protocol(f * m, m);
      std::size_t terminated = 0;
      std::size_t replay_ok = 0;
      std::size_t worst_steps = 0;
      std::size_t objects = 0;
      const std::size_t seeds = 30;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        runtime::Scheduler sched;
        std::vector<Val> inputs;
        for (std::size_t i = 0; i < f; ++i) {
          inputs.push_back(static_cast<Val>(i + 1));
        }
        sim::SimulationDriver::Options opt;
        opt.substrate = sub;
        sim::SimulationDriver driver(sched, protocol, inputs, opt);
        runtime::RandomAdversary adv(seed * 7 + f);
        if (!driver.run(adv, 50'000'000)) {
          continue;
        }
        ++terminated;
        if (sim::validate_simulation(driver).ok()) {
          ++replay_ok;
        }
        for (runtime::ProcessId i = 0; i < f; ++i) {
          worst_steps = std::max(worst_steps, sched.steps_taken(i));
        }
        objects = sched.object_count();
      }
      // The atomic substrate registers one f-component snapshot object
      // (which the paper's accounting counts as f registers); the register
      // substrate registers f actual registers.
      std::printf("  %s  %zu  %zu  %4zu  %10zu  %9zu  %9zu  %zu\n", name, f, m,
                  seeds, terminated, replay_ok, objects, worst_steps);
      ok = ok && terminated == seeds && replay_ok == seeds;
      if (sub == Substrate::kRegisters) {
        // The whole real system fits in f registers (unbounded-size, as the
        // model allows).
        ok = ok && objects == f;
      }
    }
  }
  benchutil::verdict(ok,
                     "identical guarantees on both substrates; register "
                     "census matches f");
  return ok ? 0 : 1;
}
