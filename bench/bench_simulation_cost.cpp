// E4 - Lemmas 29-31 (cost of the simulation).
//
// Claim: covering simulator q_i applies at most b(i) Block-Updates, hence at
// most 2 b(i) + 1 operations on M; with only covering simulators every
// simulator takes at most (2f+7) b(f) + 3 <= 2^{f m^2} steps on H.  The
// experiment measures the worst observed counts across adversarial seeds
// and prints them against the closed forms.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/bounds/bounds.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"

namespace {

using namespace revisim;

}  // namespace

int main() {
  benchutil::header("E4: simulation cost vs Lemma 29-31 bounds",
                    "#Block-Updates by q_i <= b(i); H-steps <= (2f+7)b(f)+3");

  std::printf(
      "\n  f  m  worst-BU(q1..qf)            b(i) bounds           worst-H-steps  "
      "bound\n");
  bool ok = true;
  for (std::size_t f = 1; f <= 3; ++f) {
    for (std::size_t m = 1; m <= 3; ++m) {
      const std::size_t n = f * m;  // covering simulators only (d = 0)
      proto::RacingAgreement protocol(n, m);
      std::vector<std::size_t> worst_bu(f, 0);
      std::size_t worst_steps = 0;
      for (std::uint64_t seed = 0; seed < 60; ++seed) {
        runtime::Scheduler sched;
        std::vector<Val> inputs;
        for (std::size_t i = 0; i < f; ++i) {
          inputs.push_back(static_cast<Val>(i + 1));
        }
        sim::SimulationDriver driver(sched, protocol, inputs);
        runtime::RandomAdversary adv(seed * 31 + f * 7 + m);
        if (!driver.run(adv, 10'000'000)) {
          benchutil::verdict(false, "simulation not wait-free");
          return 1;
        }
        for (runtime::ProcessId i = 0; i < f; ++i) {
          worst_bu[i] =
              std::max(worst_bu[i], driver.covering_stats(i)->block_updates);
          worst_steps = std::max(worst_steps, sched.steps_taken(i));
        }
      }
      std::printf("  %zu  %zu  ", f, m);
      for (std::size_t i = 0; i < f; ++i) {
        std::printf("%5zu", worst_bu[i]);
        ok = ok && worst_bu[i] <= bounds::b_bound(i + 1, m);
      }
      std::printf("    ");
      for (std::size_t i = 1; i <= f; ++i) {
        const auto b = bounds::b_bound(i, m);
        std::printf(" %8llu", static_cast<unsigned long long>(b));
      }
      const auto step_bound = bounds::covering_step_bound(f, m);
      std::printf("   %10zu  %llu (2^%.0f)\n", worst_steps,
                  static_cast<unsigned long long>(step_bound),
                  bounds::log2_coarse_step_bound(f, m));
      ok = ok && worst_steps <= step_bound;
    }
  }
  benchutil::verdict(ok, "all measured counts within the closed-form bounds");
  return ok ? 0 : 1;
}
