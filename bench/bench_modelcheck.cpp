// E13 - model-checker throughput: scheduler hot path and parallel scaling.
//
// Claim: the explorer's replay loop is cheap enough for >=10^5-execution
// sweeps; disabling trace recording (fast mode) buys a constant-factor
// speedup with bit-identical results, and the frontier-split parallel
// explorer returns the same (executions, exhausted, violation, witness)
// for every thread count while scaling with available cores.
//
// Two instances:
//   register-script (5,5,4) - three processes doing 5/5/4 register writes;
//     multinomial(14;5,5,4) = 252,252 executions of depth 14 with a trivial
//     verdict, isolating scheduler + replay cost.
//   augmented 3-proc        - the §3 augmented snapshot under a 3-process
//     mixed script with full linearization verdicts, capped at 30,000
//     executions: the realistic verdict-heavy workload.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedSnapshot;
using check::ExplorableWorld;
using check::explore_schedules;
using check::ScheduleExploreOptions;
using check::ScheduleExploreResult;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

Task<void> write_script(Scheduler& sched, std::size_t obj,
                        std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [] {}, obj, StepKind::kWrite, {});
  }
}

// Three register writers; the 252,252-leaf hot-path instance.
class ScriptWorld final : public ExplorableWorld {
 public:
  explicit ScriptWorld(std::vector<std::size_t> writes) {
    const std::size_t obj = sched_.register_object("r");
    for (std::size_t p = 0; p < writes.size(); ++p) {
      sched_.spawn(write_script(sched_, obj, writes[p]), "q");
    }
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override { return std::nullopt; }

 private:
  Scheduler sched_;
};

Task<void> bu_script(AugmentedSnapshot& m, ProcessId me, std::size_t j,
                     Val v) {
  std::vector<std::size_t> comps{j};
  std::vector<Val> vals{v};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> wide_bu_script(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> comps{0, 1};
  std::vector<Val> vals{Val(10 * (me + 1)), Val(10 * (me + 1) + 1)};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> scan_script(AugmentedSnapshot& m, ProcessId me) {
  co_await m.Scan(me);
  co_await m.Scan(me);
}

// Augmented snapshot under three mixed processes with linearizer verdicts.
class AugWorld final : public ExplorableWorld {
 public:
  AugWorld() {
    m_ = std::make_unique<AugmentedSnapshot>(sched_, "M", 2, 3);
    sched_.spawn(bu_script(*m_, 0, 0, 1), "q1");
    sched_.spawn(wide_bu_script(*m_, 1), "q2");
    sched_.spawn(scan_script(*m_, 2), "q3");
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override {
    auto lin = aug::linearize(m_->log(), 2);
    if (!lin.ok()) {
      return lin.violations.front();
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<AugmentedSnapshot> m_;
};

struct Measured {
  ScheduleExploreResult result;
  double seconds = 0;
};

template <typename Fn>
Measured timed(Fn&& run) {
  const auto t0 = std::chrono::steady_clock::now();
  Measured m;
  m.result = run();
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return m;
}

bool same(const ScheduleExploreResult& a, const ScheduleExploreResult& b) {
  return a.executions == b.executions && a.exhausted == b.exhausted &&
         a.violation == b.violation && a.witness == b.witness;
}

bool run_instance(const std::string& name,
                  const std::function<std::unique_ptr<ExplorableWorld>()>& make,
                  std::size_t max_executions) {
  ScheduleExploreOptions traced;
  traced.max_executions = max_executions;
  traced.record_traces = true;
  traced.warm_worlds = 0;  // the pre-fast-path explorer's behaviour
  ScheduleExploreOptions fast;
  fast.max_executions = max_executions;

  std::printf("\n  instance %s\n", name.c_str());
  std::printf("  %-14s %10s %9s %12s %8s\n", "config", "execs", "sec",
              "execs/sec", "speedup");

  const auto baseline = timed([&] { return explore_schedules(make, traced); });
  const auto serial_fast = timed([&] { return explore_schedules(make, fast); });

  bool ok = true;
  auto row = [&](const std::string& config, const Measured& m,
                 std::size_t threads) {
    const double rate = m.result.executions / std::max(m.seconds, 1e-9);
    const double speedup = baseline.seconds / std::max(m.seconds, 1e-9);
    std::printf("  %-14s %10zu %9.3f %12.0f %7.2fx\n", config.c_str(),
                m.result.executions, m.seconds, rate, speedup);
    const bool identical = same(m.result, baseline.result);
    ok = ok && identical;
    benchutil::json_line(
        "BENCH_modelcheck.json", "modelcheck-scaling",
        {{"instance", name},
         {"config", config},
         {"threads", threads},
         {"executions", m.result.executions},
         {"exhausted", m.result.exhausted},
         {"seconds", m.seconds},
         {"execs_per_sec", rate},
         {"speedup_vs_traced", speedup},
         {"identical_to_baseline", identical}});
  };
  row("serial-traced", baseline, 1);
  row("serial-fast", serial_fast, 1);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    check::ParallelExploreOptions popt;
    popt.base = fast;
    popt.threads = threads;
    const auto par =
        timed([&] { return check::parallel_explore_schedules(make, popt); });
    row("parallel-" + std::to_string(threads), par, threads);
  }
  return ok;
}

}  // namespace

int main() {
  benchutil::header(
      "E13: model-checker throughput (fast path + parallel frontier split)",
      "identical results across trace mode, warm-pool size and thread "
      "count; fast mode and parallelism only change wall-clock");
  std::printf("\n  hardware threads: %u\n",
              std::thread::hardware_concurrency());

  bool ok = true;
  ok &= run_instance(
      "register-script-554",
      [] {
        return std::make_unique<ScriptWorld>(
            std::vector<std::size_t>{5, 5, 4});
      },
      500'000);
  ok &= run_instance(
      "augmented-3proc", [] { return std::make_unique<AugWorld>(); }, 30'000);

  benchutil::verdict(
      ok, "all explorer configurations returned bit-identical results");
  return ok ? 0 : 1;
}
