// E13 - model-checker throughput: scheduler hot path and parallel scaling.
//
// Claim: the explorer's replay loop is cheap enough for >=10^5-execution
// sweeps; disabling trace recording (fast mode) buys a constant-factor
// speedup with bit-identical results, and the work-stealing parallel
// explorer returns the same (executions, exhausted, violation, witness)
// for every thread count while never regressing below the serial fast
// path - its worker count is clamped to the hardware concurrency and its
// per-worker warm pools adapt to what checkpoint resumption actually
// earns, so extra requested threads cost nothing on saturated cores.
//
// Run with instance names as arguments to bench only those instances
// (the CI scaling smoke runs the two register instances this way).
//
// Three instances:
//   register-script (5,5,4) - three processes doing 5/5/4 register writes;
//     multinomial(14;5,5,4) = 252,252 executions of depth 14 with a trivial
//     verdict, isolating scheduler + replay cost.
//   collect-writers (4,4,3) - writers-only traffic on the tagged-collect
//     snapshot: real Fingerprintable shared objects whose canonical state
//     collapses to the per-process progress tuple.
//   augmented 3-proc        - the §3 augmented snapshot under a 3-process
//     mixed script with full linearization verdicts, capped at 30,000
//     executions: the realistic verdict-heavy workload.
//
// Each instance additionally runs with dedupe_states on (serial and
// parallel): transposition pruning must preserve the violation verdict
// while executions shrink to the number of distinct subtrees - a
// combinatorial reduction on the script/collect worlds, and honestly ~1x on
// the augmented world, whose operation log (global step indices) makes
// states essentially unique.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/crash_worlds.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/dist/coordinator.h"
#include "src/memory/collect_snapshot.h"
#include "src/memory/register.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedSnapshot;
using check::ExplorableWorld;
using check::explore_schedules;
using check::ScheduleExploreOptions;
using check::ScheduleExploreResult;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

Task<void> write_script(mem::TypedRegister<int>& reg, std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await reg.write(static_cast<int>(i) + 1);
  }
}

// Three register writers, each on its *own* register; the 252,252-leaf
// hot-path instance.  Per-process registers keep the tree shape (every
// process always runnable, multinomial leaf count) while giving every step
// a precise single-cell footprint, so this instance also measures what
// partial-order reduction earns on disjoint-access traffic - the workload
// class POR exists for.
class ScriptWorld final : public ExplorableWorld {
 public:
  explicit ScriptWorld(std::vector<std::size_t> writes) {
    regs_.reserve(writes.size());
    for (std::size_t p = 0; p < writes.size(); ++p) {
      regs_.push_back(std::make_unique<mem::TypedRegister<int>>(
          sched_, "r" + std::to_string(p), 0));
      sched_.spawn(write_script(*regs_[p], writes[p]), "q");
    }
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override { return std::nullopt; }

 private:
  Scheduler sched_;
  std::vector<std::unique_ptr<mem::TypedRegister<int>>> regs_;
};

Task<void> upd_script(mem::CollectSnapshot& snap, ProcessId me,
                      std::size_t updates) {
  for (std::size_t i = 0; i < updates; ++i) {
    co_await snap.update(me, me, Val(100 * (me + 1) + i));
  }
}

// Writers-only tagged-collect traffic: every shared object is a registered
// state source, and the canonical state is a function of the per-process
// progress tuple, so transpositions merge aggressively.  The verdict reads
// only shared contents (sound for dedupe with no fingerprint_extra).
class CollectWorld final : public ExplorableWorld {
 public:
  explicit CollectWorld(std::vector<std::size_t> writes)
      : writes_(std::move(writes)),
        snap_(sched_, "S", writes_.size(), writes_.size()) {
    for (std::size_t p = 0; p < writes_.size(); ++p) {
      sched_.spawn(upd_script(snap_, p, writes_[p]), "u");
    }
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool complete) override {
    if (!complete) {
      return std::nullopt;
    }
    for (std::size_t p = 0; p < writes_.size(); ++p) {
      const Val want = Val(100 * (p + 1) + writes_[p] - 1);
      if (snap_.peek(p) != want) {
        return "component " + std::to_string(p) + " lost its last update";
      }
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::vector<std::size_t> writes_;
  mem::CollectSnapshot snap_;
};

Task<void> bu_script(AugmentedSnapshot& m, ProcessId me, std::size_t j,
                     Val v) {
  std::vector<std::size_t> comps{j};
  std::vector<Val> vals{v};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> wide_bu_script(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> comps{0, 1};
  std::vector<Val> vals{Val(10 * (me + 1)), Val(10 * (me + 1) + 1)};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> scan_script(AugmentedSnapshot& m, ProcessId me) {
  co_await m.Scan(me);
  co_await m.Scan(me);
}

// Augmented snapshot under three mixed processes with linearizer verdicts.
class AugWorld final : public ExplorableWorld {
 public:
  AugWorld() {
    m_ = std::make_unique<AugmentedSnapshot>(sched_, "M", 2, 3);
    sched_.spawn(bu_script(*m_, 0, 0, 1), "q1");
    sched_.spawn(wide_bu_script(*m_, 1), "q2");
    sched_.spawn(scan_script(*m_, 2), "q3");
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override {
    auto lin = aug::linearize(m_->log(), 2);
    if (!lin.ok()) {
      return lin.violations.front();
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<AugmentedSnapshot> m_;
};

struct Measured {
  ScheduleExploreResult result;
  double seconds = 0;
};

template <typename Fn>
Measured timed(Fn&& run) {
  const auto t0 = std::chrono::steady_clock::now();
  Measured m;
  m.result = run();
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  return m;
}

bool same(const ScheduleExploreResult& a, const ScheduleExploreResult& b) {
  return a.executions == b.executions && a.exhausted == b.exhausted &&
         a.violation == b.violation && a.witness == b.witness;
}

bool run_instance(const std::string& name,
                  const std::function<std::unique_ptr<ExplorableWorld>()>& make,
                  std::size_t max_executions) {
  ScheduleExploreOptions traced;
  traced.max_executions = max_executions;
  traced.record_traces = true;
  traced.warm_worlds = 0;  // the pre-fast-path explorer's behaviour
  ScheduleExploreOptions fast;
  fast.max_executions = max_executions;

  std::printf("\n  instance %s\n", name.c_str());
  std::printf("  %-22s %10s %9s %12s %8s\n", "config", "execs", "sec",
              "execs/sec", "speedup");

  const auto baseline = timed([&] { return explore_schedules(make, traced); });
  const auto serial_fast = timed([&] { return explore_schedules(make, fast); });

  bool ok = true;
  // What each configuration owes the undeduped baseline:
  //   kExact  - bit-identical (executions, exhausted, violation, witness);
  //   kPor    - same verdict, same lex-smallest witness, same exhausted
  //             flag; executions may only shrink (skipped schedules are
  //             step-swap-equivalent to explored ones);
  //   kDedupe - violation-found / violation-free parity only (the table
  //             legitimately reroutes witnesses and collapses counts).
  enum class Mode { kExact, kPor, kDedupe };
  auto row = [&](const std::string& config, const Measured& m,
                 std::size_t threads, Mode mode, bool por, bool dedupe) {
    const double rate = m.result.executions / std::max(m.seconds, 1e-9);
    const double speedup = baseline.seconds / std::max(m.seconds, 1e-9);
    const double reduction =
        static_cast<double>(baseline.result.executions) /
        std::max<std::size_t>(m.result.executions, 1);
    std::printf("  %-22s %10zu %9.3f %12.0f %7.2fx\n", config.c_str(),
                m.result.executions, m.seconds, rate, speedup);
    const bool identical = same(m.result, baseline.result);
    const bool parity =
        m.result.violation.has_value() == baseline.result.violation.has_value();
    const bool por_parity = m.result.violation == baseline.result.violation &&
                            m.result.witness == baseline.result.witness &&
                            m.result.exhausted == baseline.result.exhausted &&
                            m.result.executions <= baseline.result.executions;
    switch (mode) {
      case Mode::kExact: ok = ok && identical; break;
      case Mode::kPor: ok = ok && por_parity; break;
      case Mode::kDedupe: ok = ok && parity; break;
    }
    benchutil::json_line(
        "BENCH_modelcheck.json", "modelcheck-scaling",
        {{"instance", name},
         {"config", config},
         {"threads", threads},
         {"dedupe", dedupe},
         {"por", por},
         {"executions", m.result.executions},
         {"exhausted", m.result.exhausted},
         {"states_seen", m.result.states_seen},
         {"subtrees_pruned", m.result.subtrees_pruned},
         {"jobs", m.result.jobs},
         {"steals", m.result.steals},
         {"replay_steps_saved", m.result.replay_steps_saved},
         {"por_skipped", m.result.por_skipped},
         {"dependent_wakeups", m.result.dependent_wakeups},
         {"footprint_bytes",
          static_cast<std::size_t>(m.result.footprint_bytes)},
         {"dedupe_disabled_adaptively", m.result.dedupe_disabled_adaptively},
         {"reduction_vs_undeduped", reduction},
         {"seconds", m.seconds},
         {"execs_per_sec", rate},
         {"speedup_vs_traced", speedup},
         {"verdict_parity", parity},
         {"witness_parity", por_parity},
         {"identical_to_baseline", identical}});
  };
  row("serial-traced", baseline, 1, Mode::kExact, false, false);
  row("serial-fast", serial_fast, 1, Mode::kExact, false, false);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    check::ParallelExploreOptions popt;
    popt.base = fast;
    popt.threads = threads;
    const auto par =
        timed([&] { return check::parallel_explore_schedules(make, popt); });
    row("parallel-" + std::to_string(threads), par, threads, Mode::kExact,
        false, false);
  }

  // Distributed fork-mode engine: worker processes over loopback TCP, same
  // key-sorted merge, so results stay bit-identical at every worker count.
  // The overhead vs the in-process explorer is fork + wire serialization +
  // prefix re-replay into each worker's own warm pool.
  for (std::size_t workers : {1u, 2u, 4u}) {
    dist::DistExploreOptions dopt;
    dopt.base = fast;
    dopt.workers = workers;
    // Liveness off: these rows track the raw engine cost across recorded
    // runs that predate the heartbeat layer.
    dopt.heartbeat_interval_ms = 0;
    const auto d =
        timed([&] { return dist::dist_explore_schedules(make, dopt); });
    row("dist-workers-" + std::to_string(workers), d, workers, Mode::kExact,
        false, false);
  }

  // Liveness layer on, at an interval 20x tighter than the production
  // default: pings, pongs and per-frame deadline checks ride the job
  // protocol.  scaling_smoke.py gates this row against dist-workers-2 so a
  // heartbeat implementation that stalls the pump loop fails CI.
  {
    dist::DistExploreOptions dopt;
    dopt.base = fast;
    dopt.workers = 2;
    dopt.heartbeat_interval_ms = 25;
    const auto d =
        timed([&] { return dist::dist_explore_schedules(make, dopt); });
    row("dist-workers-2-heartbeat", d, 2, Mode::kExact, false, false);
  }

  // Transposition pruning on: executions legitimately shrink to the number
  // of distinct subtrees.
  ScheduleExploreOptions dedupe = fast;
  dedupe.dedupe_states = true;
  const auto serial_dedupe =
      timed([&] { return explore_schedules(make, dedupe); });
  row("serial-dedupe", serial_dedupe, 1, Mode::kDedupe, false, true);
  for (std::size_t threads : {2u, 4u}) {
    check::ParallelExploreOptions popt;
    popt.base = dedupe;
    popt.threads = threads;
    const auto par =
        timed([&] { return check::parallel_explore_schedules(make, popt); });
    row("parallel-dedupe-" + std::to_string(threads), par, threads,
        Mode::kDedupe, false, true);
  }

  // Dedupe over the wire: the coordinator owns the sharded fingerprint
  // table and every claim crosses the socket.  Mode::kDedupe covers the
  // verdict; the explicit bound below pins the dedupe contract (the
  // coordinator can only claim states the serial table also saw), and
  // scaling_smoke.py gate 7 holds dist-dedupe-workers-2 to 1.3x
  // parallel-dedupe-2 wall clock so a fingerprint service that stalls the
  // walk on every distinct state fails CI.
  for (std::size_t workers : {1u, 2u, 4u}) {
    dist::DistExploreOptions dopt;
    dopt.base = dedupe;
    dopt.workers = workers;
    // Liveness off, as in the undeduped dist rows above.
    dopt.heartbeat_interval_ms = 0;
    const auto d =
        timed([&] { return dist::dist_explore_schedules(make, dopt); });
    row("dist-dedupe-workers-" + std::to_string(workers), d, workers,
        Mode::kDedupe, false, true);
    ok = ok && d.result.states_seen <= serial_dedupe.result.states_seen;
  }

  // Partial-order reduction: executions shrink to one representative per
  // Mazurkiewicz trace while verdict + lex-smallest witness carry over
  // exactly - serially and at every thread count.
  ScheduleExploreOptions por = fast;
  por.por = true;
  const auto serial_por = timed([&] { return explore_schedules(make, por); });
  row("serial-por", serial_por, 1, Mode::kPor, true, false);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    check::ParallelExploreOptions popt;
    popt.base = por;
    popt.threads = threads;
    const auto par =
        timed([&] { return check::parallel_explore_schedules(make, popt); });
    row("por-parallel-" + std::to_string(threads), par, threads, Mode::kPor,
        true, false);
  }

  // POR and the transposition table compose (sleep sets are folded into the
  // fingerprint); adaptive dedupe turns the table off mid-run when a lookup
  // window earns nothing.
  ScheduleExploreOptions por_dedupe = por;
  por_dedupe.dedupe_states = true;
  const auto serial_por_dedupe =
      timed([&] { return explore_schedules(make, por_dedupe); });
  row("serial-por-dedupe", serial_por_dedupe, 1, Mode::kDedupe, true, true);

  ScheduleExploreOptions adaptive = dedupe;
  adaptive.dedupe_adaptive = true;
  const auto serial_adaptive =
      timed([&] { return explore_schedules(make, adaptive); });
  row("serial-dedupe-adaptive", serial_adaptive, 1, Mode::kDedupe, false,
      true);
  return ok;
}

// Crash-branching exploration of the registered crash worlds: how fast the
// crash-closed tree grows with the crash budget, and that the wait-freedom
// verdict (clean real object, flagged mutant) carries over to the parallel
// explorer at every thread count.
bool run_crash_instance(const std::string& world, bool expect_violation) {
  check::CrashWorldSpec spec;
  spec.world = world;
  const auto make = check::make_crash_world_factory(spec);

  std::printf("\n  crash instance %s (f=%zu m=%zu budget=%zu)\n",
              world.c_str(), spec.f, spec.m, spec.step_budget);
  std::printf("  %-16s %10s %9s %12s\n", "config", "execs", "sec",
              "execs/sec");

  bool ok = true;
  for (std::size_t crashes : {0u, 1u, 2u}) {
    ScheduleExploreOptions opt;
    opt.max_crashes = crashes;
    const auto serial = timed([&] { return explore_schedules(make, opt); });
    check::ParallelExploreOptions popt;
    popt.base = opt;
    popt.threads = 4;
    const auto par =
        timed([&] { return check::parallel_explore_schedules(make, popt); });
    ok = ok && same(serial.result, par.result);
    // A clean world stays clean with crashes allowed; a flagged world must
    // be flagged already crash-free (interference alone starves the mutant)
    // and stay flagged under every crash budget.
    ok = ok && serial.result.violation.has_value() == expect_violation;
    // POR under crash branching.  The augmented crash worlds declare opaque
    // footprints throughout (their continuations append to the shared
    // operation log), so POR must cost nothing and change nothing: the
    // reduced tree is bit-identical to the unreduced one, serially and in
    // parallel.
    ScheduleExploreOptions por_opt = opt;
    por_opt.por = true;
    const auto serial_por =
        timed([&] { return explore_schedules(make, por_opt); });
    check::ParallelExploreOptions por_popt;
    por_popt.base = por_opt;
    por_popt.threads = 4;
    const auto par_por = timed(
        [&] { return check::parallel_explore_schedules(make, por_popt); });
    ok = ok && same(serial_por.result, serial.result);
    ok = ok && same(par_por.result, serial.result);
    auto row = [&](const std::string& config, const Measured& m,
                   std::size_t threads, bool por) {
      const double rate = m.result.executions / std::max(m.seconds, 1e-9);
      std::printf("  %-16s %10zu %9.3f %12.0f\n", config.c_str(),
                  m.result.executions, m.seconds, rate);
      benchutil::json_line("BENCH_modelcheck.json", "modelcheck-crash",
                           {{"world", world},
                            {"config", config},
                            {"threads", threads},
                            {"max_crashes", crashes},
                            {"por", por},
                            {"executions", m.result.executions},
                            {"exhausted", m.result.exhausted},
                            {"violation", m.result.violation.has_value()},
                            {"jobs", m.result.jobs},
                            {"steals", m.result.steals},
                            {"replay_steps_saved", m.result.replay_steps_saved},
                            {"seconds", m.seconds},
                            {"execs_per_sec", rate}});
    };
    // Crash entries cross the wire with the top bit re-encoded; the
    // distributed run must reproduce the crash-closed tree bit-for-bit.
    dist::DistExploreOptions dopt;
    dopt.base = opt;
    dopt.workers = 2;
    const auto dist_run =
        timed([&] { return dist::dist_explore_schedules(make, dopt); });
    ok = ok && same(dist_run.result, serial.result);
    row("serial-c" + std::to_string(crashes), serial, 1, false);
    row("parallel-c" + std::to_string(crashes), par, 4, false);
    row("dist-workers-2-c" + std::to_string(crashes), dist_run, 2, false);
    row("serial-por-c" + std::to_string(crashes), serial_por, 1, true);
    row("parallel-por-c" + std::to_string(crashes), par_por, 4, true);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional arguments select instances by name; none selects all.
  const std::vector<std::string> filter(argv + 1, argv + argc);
  auto wanted = [&](const std::string& name) {
    return filter.empty() ||
           std::find(filter.begin(), filter.end(), name) != filter.end();
  };

  benchutil::header(
      "E13: model-checker throughput (fast path + work-stealing parallel)",
      "identical results across trace mode, warm-pool size and thread "
      "count; fast mode and parallelism only change wall-clock");
  std::printf("\n  hardware threads: %u\n",
              std::thread::hardware_concurrency());

  bool ok = true;
  if (wanted("register-script-554")) {
    ok &= run_instance(
        "register-script-554",
        [] {
          return std::make_unique<ScriptWorld>(
              std::vector<std::size_t>{5, 5, 4});
        },
        500'000);
  }
  if (wanted("collect-writers-443")) {
    ok &= run_instance(
        "collect-writers-443",
        [] {
          return std::make_unique<CollectWorld>(
              std::vector<std::size_t>{4, 4, 3});
        },
        500'000);
  }
  if (wanted("augmented-3proc")) {
    ok &= run_instance(
        "augmented-3proc", [] { return std::make_unique<AugWorld>(); },
        30'000);
  }
  if (wanted("aug-bu")) {
    ok &= run_crash_instance("aug-bu", /*expect_violation=*/false);
  }
  if (wanted("aug-mutant")) {
    ok &= run_crash_instance("aug-mutant", /*expect_violation=*/true);
  }

  benchutil::verdict(ok,
                     "undeduped configurations bit-identical; dedupe "
                     "configurations verdict-preserving");
  return ok ? 0 : 1;
}
