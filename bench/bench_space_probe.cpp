// E7 - empirical space boundary on tiny instances (Corollary 33 tightness
// at k = 1).
//
// Claim: obstruction-free consensus needs exactly n registers.  The probe:
//  * the commit-adopt consensus protocol, which uses m = n registers,
//    survives depth-bounded exhaustive model checking (safety in every
//    reachable configuration, solo termination from every reachable
//    configuration);
//  * the racing family with m < n admits concrete consensus violations that
//    the checker finds;
//  * the grouped k-set protocol (m = n registers) is safe for k-set.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/protocol_check.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/racing_agreement.h"
#include "src/tasks/task_spec.h"

namespace {
using namespace revisim;
}  // namespace

int main() {
  benchutil::header("E7: empirical space boundary probes",
                    "Corollary 33 (k=1): n registers are necessary and "
                    "sufficient for obstruction-free consensus");

  bool ok = true;

  std::printf("\n  protocol              n  m  depth  states    safety    termination\n");
  {
    proto::CAConsensus p2(2);
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = 24;
    opt.solo_budget = 2000;
    auto res = check::explore(p2, {0, 1}, consensus, opt);
    std::printf("  ca-consensus (m=n)    2  2  %5zu  %8zu  %-8s  %s\n",
                opt.max_depth, res.states_visited,
                res.safety_violation ? "VIOLATED" : "ok",
                res.termination_violation ? "STUCK" : "ok");
    ok = ok && res.ok();
  }
  {
    proto::CAConsensus p3(3);
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = 16;
    opt.check_termination = false;
    auto res = check::explore(p3, {0, 1, 1}, consensus, opt);
    std::printf("  ca-consensus (m=n)    3  3  %5zu  %8zu  %-8s  (not probed)\n",
                opt.max_depth, res.states_visited,
                res.safety_violation ? "VIOLATED" : "ok");
    ok = ok && !res.safety_violation;
  }
  {
    proto::GroupedKSet g(3, 2);
    tasks::KSetAgreement two_set(2);
    check::ExploreOptions opt;
    opt.max_depth = 14;
    opt.solo_budget = 2000;
    auto res = check::explore(g, {5, 6, 7}, two_set, opt);
    std::printf("  grouped-2-set (m=n)   3  3  %5zu  %8zu  %-8s  %s\n",
                opt.max_depth, res.states_visited,
                res.safety_violation ? "VIOLATED" : "ok",
                res.termination_violation ? "STUCK" : "ok");
    ok = ok && res.ok();
  }
  benchutil::verdict(ok, "m = n protocols pass every probe (sufficiency)");

  // Necessity side: starved racing instances must exhibit violations.
  std::printf("\n  racing family, consensus task: violation found below m = n?\n");
  std::printf("  n  m  depth  states    violation-found\n");
  bool starved_all_violate = true;
  struct Probe {
    std::size_t n, m, depth;
  };
  for (const Probe pr : {Probe{2, 1, 30}, Probe{3, 1, 24}, Probe{3, 2, 24}}) {
    proto::RacingAgreement p(pr.n, pr.m);
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = pr.depth;
    opt.check_termination = false;
    opt.max_states = 3'000'000;
    std::vector<Val> inputs;
    for (std::size_t i = 0; i < pr.n; ++i) {
      inputs.push_back(static_cast<Val>(i % 2));
    }
    auto res = check::explore(p, inputs, consensus, opt);
    std::printf("  %zu  %zu  %5zu  %8zu  %s\n", pr.n, pr.m, pr.depth,
                res.states_visited, res.safety_violation ? "yes" : "NO");
    starved_all_violate =
        starved_all_violate && res.safety_violation.has_value();
  }
  benchutil::verdict(starved_all_violate,
                     "every starved racing instance shows a violation "
                     "(necessity, protocol-family evidence)");
  return (ok && starved_all_violate) ? 0 : 1;
}
