// E12 - ablations of the augmented snapshot's mechanisms.
//
// DESIGN.md asks which mechanisms of Algorithms 3-4 are load-bearing.  Each
// ablation disables one and lets the §3.3 linearizer demonstrate the failure
// mode the mechanism prevents:
//   * no-helping: Block-Updates lose the L_{i,j} records (Lemmas 16-19), so
//     the returned view can predate a concurrent Scan - the window property
//     (Lemma 19) breaks;
//   * no-yield-check: every Block-Update claims atomicity, so under
//     smaller-id interference its Updates do not linearize consecutively at
//     X - Lemma 11 breaks (and Theorem 20's condition as well).
// The healthy object, on the same schedules, passes everything.
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedAblation;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> churn(aug::AugmentedSnapshot& m, ProcessId me, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < 8; ++i) {
    if (rng() % 3 == 0) {
      co_await m.Scan(me);
    } else {
      std::vector<std::size_t> comps{rng() % m.components()};
      std::vector<Val> vals{static_cast<Val>(rng() % 100)};
      co_await m.BlockUpdate(me, comps, vals);
    }
  }
}

std::size_t violating_runs(const AugmentedAblation& ablation,
                           std::size_t seeds) {
  std::size_t bad = 0;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    Scheduler sched;
    aug::AugmentedSnapshot m(sched, "M", 2, 3, ablation);
    for (ProcessId p = 0; p < 3; ++p) {
      sched.spawn(churn(m, p, seed * 23 + p), "q");
    }
    runtime::RandomAdversary adv(seed);
    if (!sched.run(adv, 100'000, false)) {
      continue;
    }
    if (!aug::linearize(m.log(), 2).ok()) {
      ++bad;
    }
  }
  return bad;
}

}  // namespace

int main() {
  benchutil::header("E12: augmented snapshot ablations",
                    "disabling helping or the yield check breaks exactly the "
                    "lemmas they exist for; the healthy object passes");

  const std::size_t seeds = 120;
  AugmentedAblation healthy;
  AugmentedAblation no_helping;
  no_helping.helping = false;
  AugmentedAblation no_yield;
  no_yield.yield_check = false;

  const std::size_t bad_healthy = violating_runs(healthy, seeds);
  const std::size_t bad_helping = violating_runs(no_helping, seeds);
  const std::size_t bad_yield = violating_runs(no_yield, seeds);

  std::printf("\n  configuration   runs  linearization-violating runs\n");
  std::printf("  healthy         %4zu  %zu\n", seeds, bad_healthy);
  std::printf("  no-helping      %4zu  %zu   (Lemma 19 windows break)\n",
              seeds, bad_helping);
  std::printf("  no-yield-check  %4zu  %zu   (Lemma 11 atomicity breaks)\n",
              seeds, bad_yield);

  const bool ok = bad_healthy == 0 && bad_helping > 0 && bad_yield > 0;
  benchutil::verdict(ok,
                     "both mechanisms are load-bearing; the checker catches "
                     "their absence");
  return ok ? 0 : 1;
}
