// E9 - Theorem 35 / Corollary 36 (nondeterministic solo termination to
// obstruction-freedom).
//
// Claim: determinizing a nondeterministic solo terminating protocol yields
// an obstruction-free protocol on the same object (same space), and any
// register protocol becomes ABA-free by tagging writes, at no behavioural
// cost.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/check/protocol_check.h"
#include "src/protocols/racing_agreement.h"
#include "src/solo/aba_free.h"
#include "src/solo/determinize.h"
#include "src/solo/nd_protocol.h"
#include "src/tasks/task_spec.h"

namespace {
using namespace revisim;
}  // namespace

int main() {
  benchutil::header("E9: determinization and ABA-freedom",
                    "Theorem 35: obstruction-free with the same m; "
                    "Corollary 36: unique-write tagging");

  bool ok = true;

  std::printf("\n  nd-coin instance  m  worst-solo-steps(from random mid-states)\n");
  for (std::size_t nm : {2ul, 3ul}) {
    auto nd = std::make_shared<solo::NDCoinConsensus>(nm, nm);
    solo::DeterminizedProtocol det(nd);
    ok = ok && det.components() == nm;
    std::size_t worst_solo = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      proto::ProtocolRun run(det, std::vector<Val>(nm, Val(seed % 3)));
      run.run_random(seed, 2 + seed % 7);  // genuinely partial executions
      for (std::size_t i = 0; i < nm; ++i) {
        proto::ProtocolRun probe = run;
        const std::size_t before = probe.steps_taken(i);
        if (!probe.run_solo(i, 5'000)) {
          benchutil::verdict(false, "solo run stuck: not obstruction-free");
          return 1;
        }
        worst_solo = std::max(worst_solo, probe.steps_taken(i) - before);
      }
    }
    std::printf("  n=m=%zu            %zu  %zu\n", nm, nm, worst_solo);
    ok = ok && worst_solo > 0;  // mid-states were genuinely unfinished
  }
  benchutil::verdict(ok, "determinized protocols obstruction-free, same m");

  // Depth-bounded exhaustive termination probe for the 2-process instance.
  {
    auto nd = std::make_shared<solo::NDCoinConsensus>(2, 2);
    solo::DeterminizedProtocol det(nd);
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = 14;
    opt.solo_budget = 1000;
    auto res = check::explore(det, {0, 1}, consensus, opt);
    std::printf("\n  exhaustive probe: %zu states, termination %s\n",
                res.states_visited,
                res.termination_violation ? "STUCK" : "ok");
    ok = ok && !res.termination_violation;
  }

  // Corollary 36: ABA-freedom.
  {
    auto inner = std::make_shared<proto::RacingAgreement>(3, 2);
    solo::ABAFreeProtocol wrapped(inner);
    std::size_t repeats = 0;
    std::size_t preserved = 0;
    const std::size_t seeds = 40;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      proto::ProtocolRun a(*inner, {1, 2, 3});
      proto::ProtocolRun b(wrapped, {1, 2, 3});
      a.run_random(seed, 200'000);
      b.run_random(seed, 200'000);
      std::set<std::pair<std::size_t, Val>> seen;
      for (const auto& rec : b.log()) {
        if (rec.is_update && !seen.emplace(rec.component, rec.value).second) {
          ++repeats;
        }
      }
      bool same = true;
      for (std::size_t i = 0; i < 3; ++i) {
        same = same && a.output(i) == b.output(i);
      }
      if (same) {
        ++preserved;
      }
    }
    std::printf("\n  aba-free wrapper: repeated writes %zu, behaviour preserved"
                " %zu/%zu runs, same space %d\n",
                repeats, preserved, seeds,
                wrapped.components() == inner->components());
    ok = ok && repeats == 0 && preserved == seeds;
  }
  benchutil::verdict(ok, "Theorem 35 + Corollary 36 experiments pass");
  return ok ? 0 : 1;
}
