// E10 - the epsilon-approximate agreement protocol's halving invariant.
//
// Claim (the n-register upper bound the paper cites as [9]): with m = n the
// round-r published values have spread at most 2^{-(r-1)}, so after
// ceil(log2(1/eps)) + 1 rounds all outputs are within eps and inside the
// input range.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/protocols/approx_agreement.h"
#include "src/protocols/protocol_runner.h"
#include "src/tasks/task_spec.h"

namespace {
using namespace revisim;
}  // namespace

int main() {
  benchutil::header("E10: approximate agreement halving invariant",
                    "round-r spread <= 2^{1-r}; outputs within eps and the "
                    "input range");

  // Part 1: per-round spread, worst over seeds (n = 4, eps = 1e-3).
  {
    const std::size_t n = 4;
    const double eps = 1e-3;
    proto::ApproxAgreement p(n, n, eps);
    // The invariant is per-execution: collect each run's per-round spread,
    // then report the worst spread any single execution exhibited.
    std::map<std::uint32_t, double> worst_spread;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      proto::ProtocolRun run(
          p, {to_fixed(0.0), to_fixed(1.0), to_fixed(0.0), to_fixed(1.0)});
      run.run_random(seed, 500'000);
      std::map<std::uint32_t, std::pair<double, double>> round_range;
      for (const auto& rec : run.log()) {
        if (!rec.is_update) {
          continue;
        }
        const std::uint32_t r = proto::approx_round(rec.value);
        const double v = static_cast<double>(proto::approx_value(rec.value)) /
                         static_cast<double>(Val{2} << 32);
        auto [it, fresh] =
            round_range.try_emplace(r, std::pair<double, double>{v, v});
        if (!fresh) {
          it->second.first = std::min(it->second.first, v);
          it->second.second = std::max(it->second.second, v);
        }
      }
      for (const auto& [r, range] : round_range) {
        auto [it, fresh] =
            worst_spread.try_emplace(r, range.second - range.first);
        if (!fresh) {
          it->second = std::max(it->second, range.second - range.first);
        }
      }
    }
    std::printf("\n  round  worst-spread(single run)  bound 2^(1-r)\n");
    bool halving = true;
    for (const auto& [r, spread] : worst_spread) {
      const double bound = std::pow(2.0, 1.0 - double(r));
      std::printf("  %5u  %24.6f  %.6f\n", r, spread, bound);
      halving = halving && spread <= bound + 1e-9;
    }
    benchutil::verdict(halving, "halving invariant holds on every round");
    if (!halving) {
      return 1;
    }
  }

  // Part 2: final outputs across (n, eps).
  std::printf("\n  n  eps      runs  violations\n");
  bool all_ok = true;
  for (std::size_t n : {2ul, 3ul, 5ul, 8ul}) {
    for (double eps : {0.1, 1e-2, 1e-4}) {
      proto::ApproxAgreement p(n, n, eps);
      tasks::ApproxAgreementTask task(eps);
      std::vector<Val> inputs;
      for (std::size_t i = 0; i < n; ++i) {
        inputs.push_back(to_fixed(i % 2 ? 1.0 : 0.0));
      }
      std::size_t violations = 0;
      const std::size_t seeds = 60;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        proto::ProtocolRun run(p, inputs);
        run.run_random(seed * 3 + n, 1'000'000);
        if (!task.validate(inputs, run.outputs()).ok) {
          ++violations;
        }
      }
      std::printf("  %zu  %-7g  %4zu  %zu\n", n, eps, seeds, violations);
      all_ok = all_ok && violations == 0;
    }
  }
  benchutil::verdict(all_ok, "all outputs within eps and the input range");
  return all_ok ? 0 : 1;
}
