// Shared output helpers for the experiment binaries.
//
// Every binary under bench/ regenerates one experiment from EXPERIMENTS.md:
// it prints a header naming the paper claim, a fixed-width table of
// paper-bound vs measured values, and a PASS/FAIL verdict line that the
// experiment log (bench_output.txt) preserves.
#pragma once

#include <cstdio>
#include <string>

namespace revisim::benchutil {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

}  // namespace revisim::benchutil
