// Shared output helpers for the experiment binaries.
//
// Every binary under bench/ regenerates one experiment from EXPERIMENTS.md:
// it prints a header naming the paper claim, a fixed-width table of
// paper-bound vs measured values, and a PASS/FAIL verdict line that the
// experiment log (bench_output.txt) preserves.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <variant>

namespace revisim::benchutil {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

// --- machine-readable records ---
//
// Experiment binaries append one JSON object per record to a BENCH_*.json
// file next to the human tables, so sweeps over commits can diff numbers
// without scraping stdout.  Usage:
//
//   benchutil::json_line("BENCH_foo.json", "serial-vs-parallel",
//                        {{"threads", 8}, {"speedup", 3.4}, {"ok", true}});

using JsonValue = std::variant<std::string, const char*, double, std::size_t,
                               long long, bool>;

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_render(const JsonValue& v) {
  struct Render {
    std::string operator()(const std::string& s) const {
      return "\"" + json_escape(s) + "\"";
    }
    std::string operator()(const char* s) const {
      return "\"" + json_escape(s) + "\"";
    }
    std::string operator()(double d) const {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", d);
      return buf;
    }
    std::string operator()(std::size_t n) const { return std::to_string(n); }
    std::string operator()(long long n) const { return std::to_string(n); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
  };
  return std::visit(Render{}, v);
}

// Appends {"name": <name>, <key>: <value>, ...} as one line of `path` and
// echoes it to stdout.
inline void json_line(
    const std::string& path, const std::string& name,
    std::initializer_list<std::pair<const char*, JsonValue>> fields) {
  std::string line = "{\"name\":\"" + json_escape(name) + "\"";
  for (const auto& [key, value] : fields) {
    line += ",\"" + json_escape(key) + "\":" + json_render(value);
  }
  line += "}";
  std::printf("%s\n", line.c_str());
  if (std::FILE* f = std::fopen(path.c_str(), "a")) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
  }
}

}  // namespace revisim::benchutil
