// E2 - Theorem 20 (yield conditions of Block-Update).
//
// Claim: a Block-Update returns the yield symbol only when a process with a
// smaller id appended update triples inside its execution interval; in
// particular q1 never yields, and yield rates grow with the number of
// smaller-id competitors.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> worker(AugmentedSnapshot& m, ProcessId me, std::size_t count,
                  std::size_t& yields) {
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::size_t> comps{i % m.components()};
    std::vector<Val> vals{static_cast<Val>(100 * me + i)};
    auto r = co_await m.BlockUpdate(me, comps, vals);
    if (r.yielded) {
      ++yields;
    }
  }
}

}  // namespace

int main() {
  benchutil::header("E2: Block-Update yield conditions",
                    "Theorem 20: yields require smaller-id interference; "
                    "q1 is always atomic");

  const std::size_t per = 60;
  const std::size_t seeds = 40;
  bool q1_clean = true;
  bool monotone_evidence = true;
  std::printf("\n  f   per-process yield rate (q1 .. qf), %zu ops x %zu seeds\n",
              per, seeds);
  for (std::size_t f = 1; f <= 5; ++f) {
    std::vector<double> rates(f, 0.0);
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      Scheduler sched;
      AugmentedSnapshot m(sched, "M", 3, f);
      std::vector<std::size_t> yields(f, 0);
      for (ProcessId p = 0; p < f; ++p) {
        sched.spawn(worker(m, p, per, yields[p]), "q");
      }
      runtime::RandomAdversary adv(seed * 977 + f);
      sched.run(adv);
      // Theorem 20 is also checked structurally by the linearizer.
      auto lin = aug::linearize(m.log(), 3);
      if (!lin.ok()) {
        benchutil::verdict(false, "linearizer violation: " + lin.violations[0]);
        return 1;
      }
      for (ProcessId p = 0; p < f; ++p) {
        rates[p] += double(yields[p]) / double(per) / double(seeds);
      }
    }
    std::printf("  %zu  ", f);
    for (double r : rates) {
      std::printf(" %6.3f", r);
    }
    std::printf("\n");
    q1_clean = q1_clean && rates[0] == 0.0;
    for (std::size_t p = 1; p < f; ++p) {
      // Later processes have more smaller-id competitors; allow noise but
      // q1's rate (0) must be the minimum.
      monotone_evidence = monotone_evidence && rates[p] >= rates[0];
    }
  }
  benchutil::verdict(q1_clean, "q1 never yielded");
  benchutil::verdict(monotone_evidence,
                     "yield rates are bounded below by q1's zero rate");
  return (q1_clean && monotone_evidence) ? 0 : 1;
}
