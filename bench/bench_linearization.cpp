// E3 - Section 3.3 correctness of the augmented snapshot.
//
// Claim: on every execution, Scans and the Updates of atomic Block-Updates
// linearize per §3.3 (Lemmas 10-19): atomic blocks are consecutive at their
// line-4 update, scans return the fold of preceding updates, windows are
// scan-free and hold the returned view.  Runs a randomized sweep plus an
// exhaustive two-process schedule exploration.
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace {

using namespace revisim;
using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> mixed(AugmentedSnapshot& m, ProcessId me, std::size_t rounds,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    if (rng() % 2 == 0) {
      co_await m.Scan(me);
    } else {
      std::vector<std::size_t> comps;
      std::vector<Val> vals;
      const std::size_t r = 1 + rng() % m.components();
      for (std::size_t j = 0; j < m.components() && comps.size() < r; ++j) {
        if (rng() % 2 == 0 || m.components() - j == r - comps.size()) {
          comps.push_back(j);
          vals.push_back(static_cast<Val>(rng() % 1000));
        }
      }
      co_await m.BlockUpdate(me, comps, vals);
    }
  }
}

struct TwoProcWorld final : check::ExplorableWorld {
  Scheduler sched;
  std::unique_ptr<AugmentedSnapshot> m;
  TwoProcWorld() {
    m = std::make_unique<AugmentedSnapshot>(sched, "M", 2, 2);
    sched.spawn(mixed(*m, 0, 2, 5), "q1");
    sched.spawn(mixed(*m, 1, 2, 9), "q2");
  }
  Scheduler& scheduler() override { return sched; }
  std::optional<std::string> verdict(bool) override {
    auto lin = aug::linearize(m->log(), 2);
    if (!lin.ok()) {
      return lin.violations.front();
    }
    return std::nullopt;
  }
};

}  // namespace

int main() {
  benchutil::header("E3: §3.3 linearization checks",
                    "Lemmas 10-19: all executions linearize; windows are "
                    "disjoint and scan-free");

  std::printf("\n  f  m  seeds  executions-checked  violations\n");
  bool ok = true;
  std::size_t total_checked = 0;
  for (std::size_t f = 2; f <= 5; ++f) {
    for (std::size_t mm = 2; mm <= 4; ++mm) {
      std::size_t violations = 0;
      const std::size_t seeds = 60;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        Scheduler sched;
        AugmentedSnapshot m(sched, "M", mm, f);
        for (ProcessId p = 0; p < f; ++p) {
          sched.spawn(mixed(m, p, 6, seed * 31 + p), "q");
        }
        runtime::RandomAdversary adv(seed * 7919 + f * 13 + mm);
        sched.run(adv);
        auto lin = aug::linearize(m.log(), mm);
        if (!lin.ok()) {
          ++violations;
        }
        ++total_checked;
      }
      std::printf("  %zu  %zu  %5zu  %18zu  %zu\n", f, mm, seeds, seeds,
                  violations);
      benchutil::json_line("BENCH_linearization.json", "random-sweep",
                           {{"f", f},
                            {"m", mm},
                            {"seeds", seeds},
                            {"violations", violations}});
      ok = ok && violations == 0;
    }
  }
  benchutil::verdict(ok, std::to_string(total_checked) +
                             " random executions all linearized");

  auto res = check::explore_schedules(
      [] { return std::make_unique<TwoProcWorld>(); });
  std::printf("\n  exhaustive 2-process exploration: %zu executions, %s\n",
              res.executions, res.ok() ? "all linearized" : "VIOLATION");
  benchutil::json_line("BENCH_linearization.json", "exhaustive-2proc",
                       {{"executions", res.executions},
                        {"exhausted", res.exhausted},
                        {"ok", res.ok()}});
  benchutil::verdict(res.ok() && res.exhausted,
                     "exhaustive schedule exploration clean");
  return (ok && res.ok()) ? 0 : 1;
}
