// E8 - the paper's bound tables (Corollaries 33 and 34).
//
// Prints the space lower bound floor((n-x)/(k+1-x)) + 1 against the known
// upper bound n-k+x across (n, k, x), highlighting the tight rows (k = 1,
// and k = n-1 with x = 1), and the approximate-agreement bound sweep.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bounds/bounds.h"

namespace {
using namespace revisim;
}  // namespace

int main() {
  benchutil::header("E8: bound tables",
                    "Corollary 33/34 closed forms, with tightness highlights");

  std::printf("%s", bounds::kset_bound_table(9).c_str());

  bool tight_consensus = true;
  for (std::size_t n = 2; n <= 30; ++n) {
    tight_consensus = tight_consensus &&
                      bounds::kset_space_lower_bound(n, 1, 1) == n &&
                      bounds::kset_space_upper_bound(n, 1, 1) == n;
  }
  benchutil::verdict(tight_consensus,
                     "k = 1 (consensus): lower = upper = n for n <= 30");

  bool tight_nminus1 = true;
  for (std::size_t n = 3; n <= 30; ++n) {
    tight_nminus1 = tight_nminus1 &&
                    bounds::kset_space_lower_bound(n, n - 1, 1) == 2 &&
                    bounds::kset_space_upper_bound(n, n - 1, 1) == 2;
  }
  benchutil::verdict(tight_nminus1,
                     "k = n-1, x = 1: lower = upper = 2 for n <= 30");

  std::printf("\n  epsilon     L(eps)   space bound (n = 16)\n");
  for (double eps : {1e-2, 1e-4, 1e-8, 1e-16, 1e-32, 1e-64, 1e-128}) {
    std::printf("  %-10g  %7.2f  %zu\n", eps,
                bounds::approx_step_lower_bound(eps),
                bounds::approx_space_lower_bound(16, eps));
  }
  benchutil::verdict(true, "tables rendered");
  return 0;
}
