// Quickstart: the augmented snapshot object (Section 3) in five minutes.
//
// Two real processes share a 3-component augmented snapshot.  q1 performs a
// multi-component Block-Update (atomic: it returns a view of the object from
// just before its updates); q2 scans and also Block-Updates.  Afterwards the
// recorded execution is linearized and checked against the paper's §3.3
// rules.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

using namespace revisim;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

namespace {

Task<void> writer(aug::AugmentedSnapshot& m, ProcessId me) {
  // Block-Update several components "at once"; the object tells us whether
  // the updates were atomic (a view) or interleaved (the yield symbol).
  std::vector<std::size_t> comps{0, 2};
  std::vector<Val> vals{10, 12};
  auto r = co_await m.BlockUpdate(me, comps, vals);
  std::printf("q%zu: Block-Update([0,2],[10,12]) -> %s\n", me + 1,
              r.yielded ? "yield" : ("view " + to_string(r.view)).c_str());

  auto s = co_await m.Scan(me);
  std::printf("q%zu: Scan -> %s\n", me + 1, to_string(s.view).c_str());
}

Task<void> reader(aug::AugmentedSnapshot& m, ProcessId me) {
  auto s1 = co_await m.Scan(me);
  std::printf("q%zu: Scan -> %s\n", me + 1, to_string(s1.view).c_str());
  std::vector<std::size_t> comps{1};
  std::vector<Val> vals{11};
  auto r = co_await m.BlockUpdate(me, comps, vals);
  std::printf("q%zu: Block-Update([1],[11]) -> %s\n", me + 1,
              r.yielded ? "yield" : ("view " + to_string(r.view)).c_str());
}

}  // namespace

int main() {
  Scheduler sched;
  aug::AugmentedSnapshot m(sched, "M", /*m=*/3, /*f=*/2);
  sched.spawn(writer(m, 0), "q1");
  sched.spawn(reader(m, 1), "q2");

  // The adversary interleaves the processes at single-step granularity;
  // swap in RoundRobinAdversary or ScriptedAdversary to steer it.
  runtime::RandomAdversary adversary(2024);
  sched.run(adversary);

  // Every execution is checked against the paper's linearization rules.
  auto lin = aug::linearize(m.log(), 3);
  std::printf("\nlinearized %zu operations; checks %s\n", lin.ops.size(),
              lin.ok() ? "all passed" : lin.violations.front().c_str());
  std::printf("final contents: %s\n", to_string(m.peek_view()).c_str());
  return lin.ok() ? 0 : 1;
}
