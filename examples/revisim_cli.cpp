// Command-line driver: run any configuration of the revisionist simulation
// and print the run report, or work with crash-exploration witnesses.
//
// Usage:
//   revisim_cli [--protocol racing|approx] [--n N] [--m M] [--f F] [--d D]
//               [--eps E] [--seed S] [--seeds COUNT] [--burst]
//               [--substrate atomic|registers] [--task consensus|kset:K|approx]
//               [--trace]
//   revisim_cli explore [--world aug-bu|aug-mutant] [--f F] [--m M]
//               [--budget B] [--max-crashes C] [--max-steps S]
//               [--max-executions E] [--witness PATH]
//   revisim_cli replay <witness-file>
//   revisim_cli serve [--host H] [--port P]
//   revisim_cli dist-explore [--workers N | --connect H:P ...] [--world W]
//               [--f F] [--m M] [--budget B] [--max-crashes C]
//               [--max-steps S] [--max-executions E] [--por] [--dedupe]
//               [--shards K] [--retries R] [--witness PATH]
//               [--probe-interval N] [--fp-batch B] [--fp-window W]
//               [--journal PATH | --resume PATH] [--heartbeat-ms MS]
//               [--heartbeat-timeout-ms MS] [--reconnect-ms MS]
//               [--fault SPEC] [--coord-fault SPEC] [--halt-after-jobs N]
//
// Examples:
//   revisim_cli --protocol racing --n 4 --m 2 --f 2 --seeds 50
//       hunt for consensus violations of the starved racing protocol
//   revisim_cli --protocol approx --n 4 --m 2 --eps 1e-4 --substrate registers
//       run the epsilon-agreement reduction on plain registers
//   revisim_cli explore --world aug-mutant --max-crashes 2 --witness w.txt
//       crash-closed wait-freedom check of the mutant; writes the witness
//   revisim_cli replay w.txt
//       deterministically reproduce a recorded verdict (exit 0 iff it
//       matches)
//   revisim_cli dist-explore --workers 4 --world aug-mutant --max-crashes 2
//       the same exploration fanned out over 4 forked worker processes;
//       executions/verdict/witness are bit-identical to `explore`
//   revisim_cli serve --port 7421
//       long-running worker for cluster mode; a dist-explore elsewhere
//       connects with --connect host:7421
//   revisim_cli dist-explore --workers 4 --world aug-mutant --journal run.j
//       journal the run; if it is interrupted, re-running the SAME command
//       with --resume run.j instead of --journal reuses every finished
//       region and completes with a bit-identical summary
//   revisim_cli dist-explore --workers 2 --world aug-bu \
//       --fault 'drop=0.02,seed=7' --retries 8
//       deterministic fault drill: each worker's outbound frames drop with
//       P=.02; seq-gap detection cuts, the worker re-dials, jobs re-queue,
//       and the summary still matches the fault-free run
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/bounds/bounds.h"
#include "src/check/crash_worlds.h"
#include "src/check/model_check.h"
#include "src/check/witness.h"
#include "src/dist/coordinator.h"
#include "src/dist/worker.h"
#include "src/protocols/approx_agreement.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/summary.h"
#include "src/tasks/task_spec.h"

using namespace revisim;

namespace {

struct Args {
  std::string protocol = "racing";
  std::size_t n = 4;
  std::size_t m = 2;
  std::size_t f = 2;
  std::size_t d = 0;
  double eps = 1e-3;
  std::uint64_t seed = 0;
  std::size_t seeds = 1;
  bool burst = false;
  bool trace = false;
  std::string substrate = "atomic";
  std::string task = "consensus";
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--protocol racing|approx] [--n N] [--m M] [--f F] "
               "[--d D] [--eps E] [--seed S] [--seeds COUNT] [--burst] "
               "[--substrate atomic|registers] [--task consensus|kset:K|"
               "approx] [--trace]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      a.protocol = next("--protocol");
    } else if (!std::strcmp(argv[i], "--n")) {
      a.n = std::strtoull(next("--n"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--m")) {
      a.m = std::strtoull(next("--m"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--f")) {
      a.f = std::strtoull(next("--f"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--d")) {
      a.d = std::strtoull(next("--d"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--eps")) {
      a.eps = std::strtod(next("--eps"), nullptr);
    } else if (!std::strcmp(argv[i], "--seed")) {
      a.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seeds")) {
      a.seeds = std::strtoull(next("--seeds"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--burst")) {
      a.burst = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      a.trace = true;
    } else if (!std::strcmp(argv[i], "--substrate")) {
      a.substrate = next("--substrate");
    } else if (!std::strcmp(argv[i], "--task")) {
      a.task = next("--task");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  return a;
}

std::unique_ptr<proto::Protocol> make_protocol(const Args& a) {
  if (a.protocol == "racing") {
    return std::make_unique<proto::RacingAgreement>(a.n, a.m);
  }
  if (a.protocol == "approx") {
    return std::make_unique<proto::ApproxAgreement>(a.n, a.m, a.eps);
  }
  std::fprintf(stderr, "unknown protocol %s\n", a.protocol.c_str());
  std::exit(2);
}

std::unique_ptr<tasks::ColorlessTask> make_task(const Args& a) {
  if (a.task == "consensus") {
    return std::make_unique<tasks::KSetAgreement>(1);
  }
  if (a.task.rfind("kset:", 0) == 0) {
    return std::make_unique<tasks::KSetAgreement>(
        std::strtoull(a.task.c_str() + 5, nullptr, 10));
  }
  if (a.task == "approx") {
    return std::make_unique<tasks::ApproxAgreementTask>(a.eps);
  }
  std::fprintf(stderr, "unknown task %s\n", a.task.c_str());
  std::exit(2);
}

// `revisim_cli replay <witness-file>`: rebuild the witnessed world from the
// crash-world registry, replay the recorded schedule (steps and crashes)
// and compare the re-derived verdict with the recorded one.  Exit 0 iff
// they match, 1 on mismatch, 2 on a malformed witness.
int run_replay(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s replay <witness-file>\n", argv[0]);
    return 2;
  }
  try {
    const check::Witness w = check::load_witness_file(argv[2]);
    std::printf("witness: world %s f=%zu m=%zu budget=%zu | %zu entries\n",
                w.spec.world.c_str(), w.spec.f, w.spec.m, w.spec.step_budget,
                w.schedule.size());
    const check::ReplayResult r = check::replay_witness(w);
    std::printf("recorded verdict: %s\n",
                w.verdict.empty() ? "(accepted)" : w.verdict.c_str());
    std::printf("replayed verdict: %s\n",
                r.verdict ? r.verdict->c_str() : "(accepted)");
    std::printf("replayed %zu steps + %zu crashes: %s\n", r.steps, r.crashes,
                r.matches ? "verdict reproduced" : "VERDICT MISMATCH");
    return r.matches ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay failed: %s\n", e.what());
    return 2;
  }
}

// `revisim_cli explore ...`: crash-closed exhaustive exploration of a
// registry world; writes a replayable witness when a violation is found.
// Exit 0 when no violation exists, 1 on a violation, 2 on bad arguments.
int run_explore(int argc, char** argv) {
  check::CrashWorldSpec spec;
  check::ScheduleExploreOptions opt;
  opt.max_crashes = 2;
  std::string witness_path;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--world")) {
      spec.world = next("--world");
    } else if (!std::strcmp(argv[i], "--f")) {
      spec.f = std::strtoull(next("--f"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--m")) {
      spec.m = std::strtoull(next("--m"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--budget")) {
      spec.step_budget = std::strtoull(next("--budget"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-crashes")) {
      opt.max_crashes = std::strtoull(next("--max-crashes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-steps")) {
      opt.max_steps = std::strtoull(next("--max-steps"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-executions")) {
      opt.max_executions = std::strtoull(next("--max-executions"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--por")) {
      opt.por = true;
    } else if (!std::strcmp(argv[i], "--dedupe")) {
      opt.dedupe_states = true;
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness_path = next("--witness");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  try {
    auto factory = check::make_crash_world_factory(spec);
    auto res = check::explore_schedules(factory, opt);
    std::printf("world %s f=%zu m=%zu budget=%zu | max_crashes=%zu "
                "max_steps=%zu\n",
                spec.world.c_str(), spec.f, spec.m, spec.step_budget,
                opt.max_crashes, opt.max_steps);
    std::printf("%zu executions, %s\n", res.executions,
                res.exhausted ? "exhausted" : "truncated at cap");
    if (!res.violation) {
      std::printf("no violation\n");
      return 0;
    }
    std::printf("violation: %s\n", res.violation->c_str());
    check::Witness w;
    w.spec = spec;
    w.max_steps = opt.max_steps;
    w.max_crashes = opt.max_crashes;
    w.por = opt.por;
    w.verdict = *res.violation;
    w.schedule = res.witness;
    if (!witness_path.empty()) {
      check::write_witness_file(w, witness_path);
      std::printf("witness written to %s\n", witness_path.c_str());
    } else {
      std::printf("%s", check::to_text(w).c_str());
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore failed: %s\n", e.what());
    return 2;
  }
}

// `revisim_cli serve`: long-running cluster-mode worker.  Listens on
// host:port and serves one coordinator connection at a time; worlds come
// from the crash-world registry, named by the coordinator's hello.
int run_serve(int argc, char** argv) {
  std::string host = "0.0.0.0";
  std::uint16_t port = 7421;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--host")) {
      host = next("--host");
    } else if (!std::strcmp(argv[i], "--port")) {
      port = static_cast<std::uint16_t>(
          std::strtoul(next("--port"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("revisim worker serving on %s:%u\n", host.c_str(),
              static_cast<unsigned>(port));
  return dist::serve_forever(host, port);
}

// `revisim_cli dist-explore ...`: the `explore` subcommand fanned out over
// worker processes - forked locally with --workers N, or remote `serve`
// instances with repeated --connect host:port.  Exit codes match
// `explore`; the summary is bit-identical to the serial run when dedupe is
// off.
int run_dist_explore(int argc, char** argv) {
  check::CrashWorldSpec spec;
  dist::DistExploreOptions opt;
  opt.base.max_crashes = 2;
  std::string witness_path;
  std::vector<std::string> endpoints;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--world")) {
      spec.world = next("--world");
    } else if (!std::strcmp(argv[i], "--f")) {
      spec.f = std::strtoull(next("--f"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--m")) {
      spec.m = std::strtoull(next("--m"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--budget")) {
      spec.step_budget = std::strtoull(next("--budget"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-crashes")) {
      opt.base.max_crashes = std::strtoull(next("--max-crashes"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-steps")) {
      opt.base.max_steps = std::strtoull(next("--max-steps"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--max-executions")) {
      opt.base.max_executions =
          std::strtoull(next("--max-executions"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--por")) {
      opt.base.por = true;
    } else if (!std::strcmp(argv[i], "--dedupe")) {
      opt.base.dedupe_states = true;
    } else if (!std::strcmp(argv[i], "--workers")) {
      opt.workers = std::strtoull(next("--workers"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--connect")) {
      endpoints.push_back(next("--connect"));
    } else if (!std::strcmp(argv[i], "--shards")) {
      opt.fp_shards = std::strtoull(next("--shards"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--probe-interval")) {
      opt.base.dist_probe_interval =
          std::strtoull(next("--probe-interval"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--fp-batch")) {
      opt.fp_batch = static_cast<std::uint32_t>(
          std::strtoul(next("--fp-batch"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--fp-window")) {
      opt.fp_window = static_cast<std::uint32_t>(
          std::strtoul(next("--fp-window"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--retries")) {
      opt.job_retries = std::strtoull(next("--retries"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--witness")) {
      witness_path = next("--witness");
    } else if (!std::strcmp(argv[i], "--journal")) {
      opt.journal_path = next("--journal");
    } else if (!std::strcmp(argv[i], "--resume")) {
      opt.journal_path = next("--resume");
      opt.resume = true;
    } else if (!std::strcmp(argv[i], "--heartbeat-ms")) {
      opt.heartbeat_interval_ms = static_cast<std::uint32_t>(
          std::strtoul(next("--heartbeat-ms"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--heartbeat-timeout-ms")) {
      opt.heartbeat_timeout_ms = static_cast<std::uint32_t>(
          std::strtoul(next("--heartbeat-timeout-ms"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--reconnect-ms")) {
      opt.reconnect_window_ms = static_cast<std::uint32_t>(
          std::strtoul(next("--reconnect-ms"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--halt-after-jobs")) {
      opt.halt_after_jobs =
          std::strtoull(next("--halt-after-jobs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--fault")) {
      try {
        opt.worker_faults = dist::parse_fault_plan(next("--fault"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad --fault spec: %s\n", e.what());
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--coord-fault")) {
      try {
        opt.coordinator_faults = dist::parse_fault_plan(next("--coord-fault"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad --coord-fault spec: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  // Pin the world identity in the journal config: resume refuses a journal
  // recorded for a different world/f/m/budget even before comparing the
  // exploration options.
  opt.journal_tag = spec.world + " f=" + std::to_string(spec.f) +
                    " m=" + std::to_string(spec.m) +
                    " budget=" + std::to_string(spec.step_budget);
  try {
    check::ScheduleExploreResult res;
    if (!endpoints.empty()) {
      res = dist::dist_explore_remote(spec, endpoints, opt);
    } else {
      auto factory = check::make_crash_world_factory(spec);
      res = dist::dist_explore_schedules(factory, opt);
    }
    std::printf("world %s f=%zu m=%zu budget=%zu | max_crashes=%zu "
                "max_steps=%zu | %zu worker(s)\n",
                spec.world.c_str(), spec.f, spec.m, spec.step_budget,
                opt.base.max_crashes, opt.base.max_steps,
                endpoints.empty() ? opt.workers : endpoints.size());
    std::printf("%zu executions across %zu jobs (%zu steals), %s\n",
                res.executions, res.jobs, res.steals,
                res.exhausted ? "exhausted" : "truncated at cap");
    if (res.error) {
      std::fprintf(stderr, "partial summary: %s\n", res.error->c_str());
      if (!opt.journal_path.empty()) {
        std::fprintf(stderr,
                     "run journal kept at %s; re-run with --resume %s to "
                     "pick up where this run stopped\n",
                     opt.journal_path.c_str(), opt.journal_path.c_str());
      }
      return 2;
    }
    if (!res.violation) {
      std::printf("no violation\n");
      return 0;
    }
    std::printf("violation: %s\n", res.violation->c_str());
    check::Witness w;
    w.spec = spec;
    w.max_steps = opt.base.max_steps;
    w.max_crashes = opt.base.max_crashes;
    w.por = opt.base.por;
    w.verdict = *res.violation;
    w.schedule = res.witness;
    if (!witness_path.empty()) {
      check::write_witness_file(w, witness_path);
      std::printf("witness written to %s\n", witness_path.c_str());
    } else {
      std::printf("%s", check::to_text(w).c_str());
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist-explore failed: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "replay")) {
    return run_replay(argc, argv);
  }
  if (argc > 1 && !std::strcmp(argv[1], "explore")) {
    return run_explore(argc, argv);
  }
  if (argc > 1 && !std::strcmp(argv[1], "serve")) {
    return run_serve(argc, argv);
  }
  if (argc > 1 && !std::strcmp(argv[1], "dist-explore")) {
    return run_dist_explore(argc, argv);
  }
  const Args args = parse(argc, argv);
  auto protocol = make_protocol(args);
  auto task = make_task(args);

  std::printf("protocol %s | task %s | f=%zu d=%zu | substrate %s\n",
              protocol->name().c_str(), task->name().c_str(), args.f, args.d,
              args.substrate.c_str());
  if (args.protocol == "racing" && args.task == "consensus" && args.d <= 1) {
    std::printf("paper bound (Corollary 33, x=max(d,1)): m >= %zu\n",
                bounds::kset_space_lower_bound(args.n, 1, 1));
  }

  std::size_t violations = 0;
  for (std::uint64_t s = args.seed; s < args.seed + args.seeds; ++s) {
    runtime::Scheduler sched;
    std::vector<Val> inputs;
    for (std::size_t i = 0; i < args.f; ++i) {
      inputs.push_back(args.protocol == "approx"
                           ? to_fixed(i % 2 ? 1.0 : 0.0)
                           : static_cast<Val>(10 * (i + 1)));
    }
    sim::SimulationDriver::Options opt;
    opt.d = args.d;
    opt.n = args.n;
    if (args.substrate == "registers") {
      opt.substrate = sim::SimulationDriver::Substrate::kRegisters;
    }
    sim::SimulationDriver driver(sched, *protocol, inputs, opt);
    std::unique_ptr<runtime::Adversary> adv;
    if (args.burst) {
      adv = std::make_unique<runtime::BurstAdversary>(s, 12);
    } else {
      adv = std::make_unique<runtime::RandomAdversary>(s);
    }
    if (!driver.run(*adv, 100'000'000)) {
      std::printf("seed %llu: step-limit cut\n",
                  static_cast<unsigned long long>(s));
      continue;
    }
    auto verdict = task->validate(driver.inputs(), driver.outputs());
    if (!verdict.ok) {
      ++violations;
    }
    if (args.seeds == 1 || !verdict.ok) {
      std::printf("\nseed %llu (%s):\n%s",
                  static_cast<unsigned long long>(s),
                  verdict.ok ? "task satisfied" : verdict.reason.c_str(),
                  sim::summarize(driver).c_str());
      if (args.trace) {
        std::printf("%s", sched.trace().to_text().c_str());
      }
    }
  }
  std::printf("\n%zu/%zu runs violated the task\n", violations, args.seeds);
  return 0;
}
