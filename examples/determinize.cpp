// Section 5 end to end: randomized-style protocol -> obstruction-free.
//
// NDCoinConsensus resolves racing conflicts by a nondeterministic choice (a
// coin flip, as a randomized wait-free protocol would); it is
// nondeterministic solo terminating.  Theorem 35 determinizes it - every
// delta-choice follows a shortest solo path - and the result is
// obstruction-free on the *same* m-component object, which is why space
// lower bounds for obstruction-free protocols carry over to randomized
// wait-free ones.  Corollary 36's ABA-free tagging is shown on top.
//
//   ./examples/determinize
#include <cstdio>
#include <set>

#include "src/protocols/protocol_runner.h"
#include "src/protocols/racing_agreement.h"
#include "src/solo/aba_free.h"
#include "src/solo/determinize.h"
#include "src/solo/nd_protocol.h"

using namespace revisim;

int main() {
  auto nd = std::make_shared<solo::NDCoinConsensus>(/*n=*/3, /*m=*/3);
  solo::DeterminizedProtocol det(nd);
  std::printf("nondeterministic protocol: %s\n", nd->name().c_str());
  std::printf("determinized protocol:     %s  (components: %zu -> %zu)\n\n",
              det.name().c_str(), nd->components(), det.components());

  // Obstruction-freedom: from random reachable mid-states, every process
  // finishes running solo.
  std::size_t worst = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    proto::ProtocolRun run(det, {1, 2, 3});
    run.run_random(seed, 25);  // adversarial partial run
    for (std::size_t i = 0; i < 3; ++i) {
      proto::ProtocolRun probe = run;
      const std::size_t before = probe.steps_taken(i);
      if (!probe.run_solo(i, 10'000)) {
        std::printf("NOT obstruction-free (seed %llu, p%zu)\n",
                    static_cast<unsigned long long>(seed), i + 1);
        return 1;
      }
      worst = std::max(worst, probe.steps_taken(i) - before);
    }
  }
  std::printf("obstruction-freedom probe: 40 adversarial mid-states x 3 "
              "processes, all solo runs finished (worst %zu steps)\n",
              worst);

  // Corollary 36: tag writes to make any register protocol ABA-free.
  auto inner = std::make_shared<proto::RacingAgreement>(3, 2);
  solo::ABAFreeProtocol wrapped(inner);
  proto::ProtocolRun run(wrapped, {5, 6, 7});
  run.run_random(99, 100'000);
  std::set<std::pair<std::size_t, Val>> seen;
  bool aba_free = true;
  std::size_t writes = 0;
  for (const auto& rec : run.log()) {
    if (rec.is_update) {
      ++writes;
      aba_free = aba_free && seen.emplace(rec.component, rec.value).second;
    }
  }
  std::printf("\nABA-free wrapper over %s: %zu writes, repeats: %s, "
              "space unchanged: %s\n",
              inner->name().c_str(), writes, aba_free ? "none" : "FOUND",
              wrapped.components() == inner->components() ? "yes" : "no");
  return aba_free ? 0 : 1;
}
