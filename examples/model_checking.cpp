// Using the library as a verification tool.
//
// Two checkers ship with the reproduction:
//  * the protocol model checker explores every configuration of a
//    simulated-system protocol (bounded depth, exact deduplication) - here
//    it proves the 2-register 2-process commit-adopt-based consensus safe
//    on the instance and *finds a concrete agreement-violating schedule*
//    for a racing protocol squeezed below the paper's bound;
//  * the schedule explorer enumerates every interleaving of the real
//    system - here it re-checks the augmented snapshot's §3.3 linearization
//    on every two-process schedule.
//
//   ./examples/model_checking
#include <cstdio>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/check/protocol_check.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/racing_agreement.h"
#include "src/tasks/task_spec.h"

using namespace revisim;

namespace {

class TwoBlockUpdates final : public check::ExplorableWorld {
 public:
  TwoBlockUpdates() {
    m_ = std::make_unique<aug::AugmentedSnapshot>(sched_, "M", 2, 2);
    auto body = [](aug::AugmentedSnapshot& m, runtime::ProcessId me)
        -> runtime::Task<void> {
      std::vector<std::size_t> comps{me % 2};
      std::vector<Val> vals{Val(10 + me)};
      co_await m.BlockUpdate(me, comps, vals);
      co_await m.Scan(me);
    };
    sched_.spawn(body(*m_, 0), "q1");
    sched_.spawn(body(*m_, 1), "q2");
  }
  runtime::Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override {
    auto lin = aug::linearize(m_->log(), 2);
    return lin.ok() ? std::nullopt
                    : std::optional<std::string>(lin.violations.front());
  }

 private:
  runtime::Scheduler sched_;
  std::unique_ptr<aug::AugmentedSnapshot> m_;
};

}  // namespace

int main() {
  // 1. Prove (instance-exhaustively) that the m = n consensus protocol is
  //    safe and obstruction-free on 2 processes.
  {
    proto::CAConsensus protocol(2);
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = 24;
    opt.solo_budget = 2'000;
    auto res = check::explore(protocol, {0, 1}, consensus, opt);
    std::printf("ca-consensus(n=2), m = 2 registers:\n");
    std::printf("  %zu states within depth %zu: safety %s, solo termination "
                "from every state %s\n\n",
                res.states_visited, opt.max_depth,
                res.safety_violation ? "VIOLATED" : "verified",
                res.termination_violation ? "VIOLATED" : "verified");
  }

  // 2. Find the counterexample below the bound.
  {
    proto::RacingAgreement starved(2, 1);  // 1 register for 2 processes
    tasks::KSetAgreement consensus(1);
    check::ExploreOptions opt;
    opt.max_depth = 30;
    opt.check_termination = false;
    auto res = check::explore(starved, {0, 1}, consensus, opt);
    std::printf("racing(n=2), m = 1 register (below the bound n = 2):\n");
    if (res.safety_violation) {
      std::printf("  violation found after %zu states:\n    %s\n\n",
                  res.states_visited, res.safety_violation->c_str());
    } else {
      std::printf("  unexpectedly clean\n\n");
      return 1;
    }
  }

  // 3. Exhaust every real-system schedule of two Block-Updates + Scans over
  //    the augmented snapshot and re-check §3.3 on each.
  {
    auto res = check::explore_schedules(
        [] { return std::make_unique<TwoBlockUpdates>(); });
    std::printf("augmented snapshot, 2 processes, every interleaving:\n");
    std::printf("  %zu complete executions, linearization checks %s\n",
                res.executions,
                res.ok() ? "all passed" : res.violation->c_str());
    return res.ok() ? 0 : 1;
  }
}
