// The paper's headline machinery, end to end (Section 4).
//
// Feed the revisionist simulation a *space-starved* protocol: racing
// consensus among n = 4 simulated processes squeezed into m = 2 registers -
// below the paper's lower bound of n = 4 registers for obstruction-free
// consensus (Corollary 33).  Two real simulators then solve consensus
// *wait-free*, which is impossible... so some schedule must make the
// simulated protocol betray itself.  This example hunts for that schedule,
// prints the violating run, and replays it to prove the violation belongs
// to the protocol, not to the simulation.
//
//   ./examples/kset_reduction
#include <cstdio>

#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"
#include "src/sim/summary.h"
#include "src/tasks/task_spec.h"

using namespace revisim;

int main() {
  proto::RacingAgreement protocol(/*n=*/4, /*m=*/2);
  tasks::KSetAgreement consensus(1);

  std::printf("protocol: %s  (paper bound for consensus: m >= n = 4)\n",
              protocol.name().c_str());
  std::printf("simulators: f = 2 covering, inputs {10, 20}\n\n");

  for (std::uint64_t seed = 0;; ++seed) {
    runtime::Scheduler sched;
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary adversary(seed);
    if (!driver.run(adversary, 10'000'000)) {
      std::printf("seed %llu: step-limit cut (should not happen)\n",
                  static_cast<unsigned long long>(seed));
      continue;
    }
    auto outputs = driver.outputs();
    auto verdict = consensus.validate(driver.inputs(), outputs);
    std::printf("seed %llu: outputs {%lld, %lld}  %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(outputs[0]),
                static_cast<long long>(outputs[1]),
                verdict.ok ? "agree" : "DISAGREE");
    if (verdict.ok) {
      continue;
    }

    // Found the contradiction: a wait-free run with two outputs.  Show that
    // the run is a *legal* execution of the protocol (Lemma 26): the paper's
    // conclusion is that the protocol had too few registers to be correct.
    auto report = sim::validate_simulation(driver);
    std::printf("\nreduction found a consensus violation:\n%s",
                sim::summarize(driver).c_str());
    std::printf("\nconclusion: no obstruction-free consensus protocol for 4 "
                "processes fits in 2 registers (Corollary 33).\n");
    return report.ok() ? 0 : 1;
  }
}
