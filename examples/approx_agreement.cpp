// Approximate agreement, healthy and starved (Sections 1, 4.6).
//
// First runs the n-register epsilon-approximate agreement protocol under an
// adversarial schedule and prints the convergence; then squeezes the same
// protocol into fewer registers and lets two simulators (Theorem 21(1))
// drive it wait-free, showing that the simulation's cost does not grow with
// 1/epsilon while the 2-process step lower bound L = 0.5 log3(1/eps) does -
// the engine behind the paper's floor(n/2)+1 space bound (Corollary 34).
//
//   ./examples/approx_agreement
#include <cstdio>

#include "src/bounds/bounds.h"
#include "src/protocols/approx_agreement.h"
#include "src/protocols/protocol_runner.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/tasks/task_spec.h"

using namespace revisim;

namespace {

double as_real(Val protocol_output) {
  return static_cast<double>(protocol_output) /
         static_cast<double>(Val{2} << 32);
}

}  // namespace

int main() {
  const double eps = 1e-3;

  // Part 1: the correct protocol (m = n = 4).
  {
    proto::ApproxAgreement protocol(4, 4, eps);
    proto::ProtocolRun run(protocol, {to_fixed(0.0), to_fixed(1.0),
                                      to_fixed(0.25), to_fixed(0.75)});
    run.run_random(/*seed=*/7, 1'000'000);
    std::printf("healthy %s:\n  outputs:", protocol.name().c_str());
    for (std::size_t i = 0; i < 4; ++i) {
      std::printf(" %.6f", as_real(*run.output(i)));
    }
    tasks::ApproxAgreementTask task(eps);
    auto v = task.validate({to_fixed(0.0), to_fixed(1.0), to_fixed(0.25),
                            to_fixed(0.75)},
                           run.outputs());
    std::printf("\n  within eps = %g and the input range: %s\n\n", eps,
                v.ok ? "yes" : v.reason.c_str());
  }

  // Part 2: the reduction.  Starve the protocol (m = 2 < n = 4) and let two
  // simulators run it wait-free; sweep epsilon to show the flat cost.
  std::printf("starved instance (m = 2, n = 4) under 2 covering simulators:\n");
  std::printf("  eps        L(eps)=0.5*log3(1/eps)   simulator H-steps\n");
  for (double e : {1e-2, 1e-4, 1e-8}) {
    proto::ApproxAgreement starved(4, 2, e);
    runtime::Scheduler sched;
    sim::SimulationDriver driver(sched, starved,
                                 {to_fixed(0.0), to_fixed(1.0)});
    runtime::RandomAdversary adversary(11);
    driver.run(adversary, 10'000'000);
    std::printf("  %-9g  %22.2f   q1=%zu q2=%zu\n", e,
                bounds::approx_step_lower_bound(e), sched.steps_taken(0),
                sched.steps_taken(1));
  }
  std::printf(
      "\nthe cost stays flat while L grows: a protocol this small cannot be\n"
      "correct once L exceeds the simulation bound (Corollary 34 gives\n"
      "m >= min{floor(n/2)+1, sqrt(log2(L/2))}).\n");
  return 0;
}
