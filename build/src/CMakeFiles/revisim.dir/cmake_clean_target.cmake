file(REMOVE_RECURSE
  "librevisim.a"
)
