
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augmented/hstate.cpp" "src/CMakeFiles/revisim.dir/augmented/hstate.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/augmented/hstate.cpp.o.d"
  "/root/repo/src/augmented/linearizer.cpp" "src/CMakeFiles/revisim.dir/augmented/linearizer.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/augmented/linearizer.cpp.o.d"
  "/root/repo/src/augmented/timestamp.cpp" "src/CMakeFiles/revisim.dir/augmented/timestamp.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/augmented/timestamp.cpp.o.d"
  "/root/repo/src/bounds/bounds.cpp" "src/CMakeFiles/revisim.dir/bounds/bounds.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/bounds/bounds.cpp.o.d"
  "/root/repo/src/check/lincheck.cpp" "src/CMakeFiles/revisim.dir/check/lincheck.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/check/lincheck.cpp.o.d"
  "/root/repo/src/check/model_check.cpp" "src/CMakeFiles/revisim.dir/check/model_check.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/check/model_check.cpp.o.d"
  "/root/repo/src/check/protocol_check.cpp" "src/CMakeFiles/revisim.dir/check/protocol_check.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/check/protocol_check.cpp.o.d"
  "/root/repo/src/memory/collect_snapshot.cpp" "src/CMakeFiles/revisim.dir/memory/collect_snapshot.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/memory/collect_snapshot.cpp.o.d"
  "/root/repo/src/protocols/approx_agreement.cpp" "src/CMakeFiles/revisim.dir/protocols/approx_agreement.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/protocols/approx_agreement.cpp.o.d"
  "/root/repo/src/protocols/ca_consensus.cpp" "src/CMakeFiles/revisim.dir/protocols/ca_consensus.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/protocols/ca_consensus.cpp.o.d"
  "/root/repo/src/protocols/commit_adopt.cpp" "src/CMakeFiles/revisim.dir/protocols/commit_adopt.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/protocols/commit_adopt.cpp.o.d"
  "/root/repo/src/protocols/protocol_runner.cpp" "src/CMakeFiles/revisim.dir/protocols/protocol_runner.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/protocols/protocol_runner.cpp.o.d"
  "/root/repo/src/protocols/racing_agreement.cpp" "src/CMakeFiles/revisim.dir/protocols/racing_agreement.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/protocols/racing_agreement.cpp.o.d"
  "/root/repo/src/runtime/adversary.cpp" "src/CMakeFiles/revisim.dir/runtime/adversary.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/runtime/adversary.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/revisim.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/revisim.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/sim/covering_simulator.cpp" "src/CMakeFiles/revisim.dir/sim/covering_simulator.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/sim/covering_simulator.cpp.o.d"
  "/root/repo/src/sim/direct_simulator.cpp" "src/CMakeFiles/revisim.dir/sim/direct_simulator.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/sim/direct_simulator.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/CMakeFiles/revisim.dir/sim/driver.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/sim/driver.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/CMakeFiles/revisim.dir/sim/replay.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/sim/replay.cpp.o.d"
  "/root/repo/src/sim/summary.cpp" "src/CMakeFiles/revisim.dir/sim/summary.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/sim/summary.cpp.o.d"
  "/root/repo/src/solo/aba_free.cpp" "src/CMakeFiles/revisim.dir/solo/aba_free.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/solo/aba_free.cpp.o.d"
  "/root/repo/src/solo/determinize.cpp" "src/CMakeFiles/revisim.dir/solo/determinize.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/solo/determinize.cpp.o.d"
  "/root/repo/src/solo/nd_protocol.cpp" "src/CMakeFiles/revisim.dir/solo/nd_protocol.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/solo/nd_protocol.cpp.o.d"
  "/root/repo/src/solo/randomized_runner.cpp" "src/CMakeFiles/revisim.dir/solo/randomized_runner.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/solo/randomized_runner.cpp.o.d"
  "/root/repo/src/solo/solo_search.cpp" "src/CMakeFiles/revisim.dir/solo/solo_search.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/solo/solo_search.cpp.o.d"
  "/root/repo/src/tasks/colorless.cpp" "src/CMakeFiles/revisim.dir/tasks/colorless.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/tasks/colorless.cpp.o.d"
  "/root/repo/src/tasks/task_spec.cpp" "src/CMakeFiles/revisim.dir/tasks/task_spec.cpp.o" "gcc" "src/CMakeFiles/revisim.dir/tasks/task_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
