# Empty dependencies file for revisim.
# This may be replaced when dependencies are built.
