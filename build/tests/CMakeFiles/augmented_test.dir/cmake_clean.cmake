file(REMOVE_RECURSE
  "CMakeFiles/augmented_test.dir/augmented_test.cpp.o"
  "CMakeFiles/augmented_test.dir/augmented_test.cpp.o.d"
  "augmented_test"
  "augmented_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmented_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
