# Empty dependencies file for augmented_test.
# This may be replaced when dependencies are built.
