file(REMOVE_RECURSE
  "CMakeFiles/windows_test.dir/windows_test.cpp.o"
  "CMakeFiles/windows_test.dir/windows_test.cpp.o.d"
  "windows_test"
  "windows_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
