# Empty dependencies file for linearizer_negative_test.
# This may be replaced when dependencies are built.
