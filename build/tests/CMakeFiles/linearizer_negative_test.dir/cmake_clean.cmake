file(REMOVE_RECURSE
  "CMakeFiles/linearizer_negative_test.dir/linearizer_negative_test.cpp.o"
  "CMakeFiles/linearizer_negative_test.dir/linearizer_negative_test.cpp.o.d"
  "linearizer_negative_test"
  "linearizer_negative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearizer_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
