file(REMOVE_RECURSE
  "CMakeFiles/modelcheck_test.dir/modelcheck_test.cpp.o"
  "CMakeFiles/modelcheck_test.dir/modelcheck_test.cpp.o.d"
  "modelcheck_test"
  "modelcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modelcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
