file(REMOVE_RECURSE
  "CMakeFiles/solo_test.dir/solo_test.cpp.o"
  "CMakeFiles/solo_test.dir/solo_test.cpp.o.d"
  "solo_test"
  "solo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
