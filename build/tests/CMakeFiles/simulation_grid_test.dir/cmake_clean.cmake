file(REMOVE_RECURSE
  "CMakeFiles/simulation_grid_test.dir/simulation_grid_test.cpp.o"
  "CMakeFiles/simulation_grid_test.dir/simulation_grid_test.cpp.o.d"
  "simulation_grid_test"
  "simulation_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
