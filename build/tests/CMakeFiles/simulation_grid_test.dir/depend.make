# Empty dependencies file for simulation_grid_test.
# This may be replaced when dependencies are built.
