file(REMOVE_RECURSE
  "CMakeFiles/register_substrate_test.dir/register_substrate_test.cpp.o"
  "CMakeFiles/register_substrate_test.dir/register_substrate_test.cpp.o.d"
  "register_substrate_test"
  "register_substrate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
