# Empty compiler generated dependencies file for register_substrate_test.
# This may be replaced when dependencies are built.
