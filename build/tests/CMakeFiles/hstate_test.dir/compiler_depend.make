# Empty compiler generated dependencies file for hstate_test.
# This may be replaced when dependencies are built.
