file(REMOVE_RECURSE
  "CMakeFiles/hstate_test.dir/hstate_test.cpp.o"
  "CMakeFiles/hstate_test.dir/hstate_test.cpp.o.d"
  "hstate_test"
  "hstate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
