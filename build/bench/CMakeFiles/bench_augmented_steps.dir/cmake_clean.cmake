file(REMOVE_RECURSE
  "CMakeFiles/bench_augmented_steps.dir/bench_augmented_steps.cpp.o"
  "CMakeFiles/bench_augmented_steps.dir/bench_augmented_steps.cpp.o.d"
  "bench_augmented_steps"
  "bench_augmented_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_augmented_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
