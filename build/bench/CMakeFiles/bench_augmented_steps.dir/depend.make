# Empty dependencies file for bench_augmented_steps.
# This may be replaced when dependencies are built.
