file(REMOVE_RECURSE
  "CMakeFiles/bench_bounds_tables.dir/bench_bounds_tables.cpp.o"
  "CMakeFiles/bench_bounds_tables.dir/bench_bounds_tables.cpp.o.d"
  "bench_bounds_tables"
  "bench_bounds_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounds_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
