# Empty compiler generated dependencies file for bench_bounds_tables.
# This may be replaced when dependencies are built.
