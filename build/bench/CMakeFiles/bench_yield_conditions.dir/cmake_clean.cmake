file(REMOVE_RECURSE
  "CMakeFiles/bench_yield_conditions.dir/bench_yield_conditions.cpp.o"
  "CMakeFiles/bench_yield_conditions.dir/bench_yield_conditions.cpp.o.d"
  "bench_yield_conditions"
  "bench_yield_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yield_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
