file(REMOVE_RECURSE
  "CMakeFiles/bench_linearization.dir/bench_linearization.cpp.o"
  "CMakeFiles/bench_linearization.dir/bench_linearization.cpp.o.d"
  "bench_linearization"
  "bench_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
