file(REMOVE_RECURSE
  "CMakeFiles/bench_kset_reduction.dir/bench_kset_reduction.cpp.o"
  "CMakeFiles/bench_kset_reduction.dir/bench_kset_reduction.cpp.o.d"
  "bench_kset_reduction"
  "bench_kset_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kset_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
