# Empty compiler generated dependencies file for bench_kset_reduction.
# This may be replaced when dependencies are built.
