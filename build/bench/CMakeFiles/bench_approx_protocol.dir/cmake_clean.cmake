file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_protocol.dir/bench_approx_protocol.cpp.o"
  "CMakeFiles/bench_approx_protocol.dir/bench_approx_protocol.cpp.o.d"
  "bench_approx_protocol"
  "bench_approx_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
