# Empty dependencies file for bench_approx_protocol.
# This may be replaced when dependencies are built.
