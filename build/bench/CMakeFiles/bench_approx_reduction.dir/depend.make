# Empty dependencies file for bench_approx_reduction.
# This may be replaced when dependencies are built.
