file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_reduction.dir/bench_approx_reduction.cpp.o"
  "CMakeFiles/bench_approx_reduction.dir/bench_approx_reduction.cpp.o.d"
  "bench_approx_reduction"
  "bench_approx_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
