# Empty compiler generated dependencies file for bench_space_probe.
# This may be replaced when dependencies are built.
