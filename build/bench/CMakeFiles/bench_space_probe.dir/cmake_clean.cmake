file(REMOVE_RECURSE
  "CMakeFiles/bench_space_probe.dir/bench_space_probe.cpp.o"
  "CMakeFiles/bench_space_probe.dir/bench_space_probe.cpp.o.d"
  "bench_space_probe"
  "bench_space_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_space_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
