# Empty dependencies file for bench_simulation_cost.
# This may be replaced when dependencies are built.
