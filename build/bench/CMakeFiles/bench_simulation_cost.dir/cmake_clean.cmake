file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation_cost.dir/bench_simulation_cost.cpp.o"
  "CMakeFiles/bench_simulation_cost.dir/bench_simulation_cost.cpp.o.d"
  "bench_simulation_cost"
  "bench_simulation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
