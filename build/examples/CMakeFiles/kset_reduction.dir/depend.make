# Empty dependencies file for kset_reduction.
# This may be replaced when dependencies are built.
