file(REMOVE_RECURSE
  "CMakeFiles/kset_reduction.dir/kset_reduction.cpp.o"
  "CMakeFiles/kset_reduction.dir/kset_reduction.cpp.o.d"
  "kset_reduction"
  "kset_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kset_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
