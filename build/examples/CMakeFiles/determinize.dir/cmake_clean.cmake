file(REMOVE_RECURSE
  "CMakeFiles/determinize.dir/determinize.cpp.o"
  "CMakeFiles/determinize.dir/determinize.cpp.o.d"
  "determinize"
  "determinize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
