# Empty compiler generated dependencies file for determinize.
# This may be replaced when dependencies are built.
