# Empty compiler generated dependencies file for revisim_cli.
# This may be replaced when dependencies are built.
