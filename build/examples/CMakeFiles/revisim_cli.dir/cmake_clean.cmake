file(REMOVE_RECURSE
  "CMakeFiles/revisim_cli.dir/revisim_cli.cpp.o"
  "CMakeFiles/revisim_cli.dir/revisim_cli.cpp.o.d"
  "revisim_cli"
  "revisim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revisim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
